"""Futurized execution engine: the gravity+hydro hot-path dispatcher.

The paper's node-level execution model (Sec. 5.1) couples three pieces:
per-subgrid kernels are wrapped in HPX tasks on a work-stealing
scheduler; each CPU worker, when it reaches a kernel launch, first tries
to grab an idle CUDA stream (the kernel then runs on the GPU and its
completion is a future); if every stream it can see is busy the kernel
overflows onto the CPU worker itself.  The :class:`ExecutionEngine`
reproduces exactly that routing for *real* solver work —
:meth:`repro.core.gravity.fmm.FmmSolver.solve` hands it the recorded
M2L/P2P interaction batches, :class:`repro.core.mesh.BlockMesh` hands it
per-block hydro right-hand sides — instead of only for the synthetic
kernels of the simulator.

On top of that routing sits **work aggregation** (Daiß et al., arXiv
2210.06438; :mod:`repro.runtime.aggregate`): :meth:`map` splits a batch
into slot-buffer-sized chunks, and each chunk task opens an
:class:`~repro.runtime.aggregate.AggregationRegion` that coalesces its
kernels into a single aggregated stream launch.  Callers are oblivious —
they still get one future per kernel, in input order — but the device
sees one launch per filled slot buffer instead of one per kernel.

Placement accounting: every task placement is counted, GPU placements
under ``/cuda/launched/gpu`` and CPU placements (stream-less engines and
``use_device=False`` included) under ``/cuda/launched/cpu``, so
``/exec/launched/gpu + /exec/launched/cpu == /exec/tasks`` always
reconciles.  GPU placements are recorded only *after* the aggregated
enqueue succeeded — a faulting enqueue falls back to the CPU and is
counted there — keeping the Sec. 6.1.2 launch-ratio statistic honest.
:meth:`publish_counters` also publishes ``/cuda/aggregated-per-launch``
(kernels carried per aggregated GPU launch) and republishes the
scheduler's ``/threads/...`` gauges so one call snapshots the whole hot
path.

Every combination of resources degrades gracefully:

========== ========= ==================================================
scheduler  device(s)  behaviour
========== ========= ==================================================
yes        yes        chunk tasks fan out to workers; each chunk's region
                      launches one aggregated op on an idle stream,
                      overflowing to its own worker (the paper's rule)
yes        no         plain work-stealing CPU execution
no         yes        calling thread fills one region over the whole
                      batch; buffer-full flushes launch on streams
no         no         synchronous execution (serial reference)
========== ========= ==================================================
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

import numpy as np

from ..sanitize import racecheck as _racecheck
from ..sanitize import state as _sanitize_state
from ..runtime.aggregate import AggregationRegion, DEFAULT_AGG_SLOTS
from ..runtime.counters import CounterRegistry, default_registry
from ..runtime.cuda import CudaDevice, StreamPool, DEFAULT_LEASE_TIMEOUT_S
from ..runtime.future import Future, Promise
from ..runtime.scheduler import WorkStealingScheduler

__all__ = ["ExecutionEngine"]


class ExecutionEngine:
    """Routes batches of kernel work to scheduler workers and GPU streams.

    Parameters
    ----------
    scheduler:
        Optional :class:`~repro.runtime.scheduler.WorkStealingScheduler`;
        when present, submitted work becomes stealable chunk tasks.
    device / devices:
        Optional :class:`~repro.runtime.cuda.CudaDevice` (or several);
        when present, chunk regions acquire an idle stream from a shared
        :class:`~repro.runtime.cuda.StreamPool` before overflowing to the
        CPU — the paper's launch policy, with leases that cannot leak.
    registry:
        Counter registry for ``/cuda/launched/*``, ``/cuda/agg-*`` and
        ``/exec/*`` (default: the global registry).
    aggregate / agg_slots:
        Work aggregation: kernels are coalesced into aggregated launches
        of up to ``agg_slots`` slots (``aggregate=False`` degrades to one
        launch per kernel, keeping the same accounting).
    """

    def __init__(self, scheduler: WorkStealingScheduler | None = None,
                 device: CudaDevice | None = None,
                 devices: Sequence[CudaDevice] | None = None,
                 registry: CounterRegistry | None = None,
                 lease_timeout: float = DEFAULT_LEASE_TIMEOUT_S,
                 aggregate: bool = True,
                 agg_slots: int = DEFAULT_AGG_SLOTS):
        if agg_slots < 1:
            raise ValueError("need at least one aggregation slot")
        devs = list(devices) if devices else []
        if device is not None:
            devs.insert(0, device)
        self.scheduler = scheduler
        self.devices = devs
        self.pool = StreamPool(devs, lease_timeout) if devs else None
        self.registry = registry or default_registry()
        self.agg_slots = agg_slots if aggregate else 1
        self._lock = threading.Lock()
        self.gpu_launches = 0    # kernels placed on GPU streams
        self.cpu_launches = 0    # kernels placed on CPU workers
        self.agg_launches = 0    # aggregated GPU launches carrying them
        self.agg_tasks = 0       # kernels carried by aggregated launches

    # -- placement ---------------------------------------------------------

    def _count_flush(self, gpu: bool, n: int) -> None:
        """Region flush callback: count ``n`` placed kernels.

        Called by :class:`AggregationRegion` only *after* a successful
        aggregated enqueue (GPU) or for the inline overflow run (CPU), so
        the launch gauges always reconcile with ``/exec/tasks`` and can
        never run ahead of a faulting enqueue.
        """
        with self._lock:
            if gpu:
                self.gpu_launches += n
                self.agg_launches += 1
                self.agg_tasks += n
            else:
                self.cpu_launches += n
        self.registry.increment(
            "/cuda/launched/gpu" if gpu else "/cuda/launched/cpu", float(n))

    def _open_region(self, use_device: bool) -> AggregationRegion:
        pool = self.pool if use_device else None
        return AggregationRegion(pool, slots=self.agg_slots,
                                 registry=self.registry,
                                 on_flush=self._count_flush)

    def _run_chunk(self, fn: Callable[..., Any],
                   argtuples: Sequence[tuple],
                   promises: Sequence[Promise], use_device: bool) -> None:
        """One chunk task: an aggregation region over its slot buffer."""
        with self._open_region(use_device) as region:
            for args, promise in zip(argtuples, promises):
                region.push(fn, args, promise)

    # -- public API --------------------------------------------------------

    def submit(self, fn: Callable[..., Any], *args: Any,
               use_device: bool = True) -> Future:
        """Run ``fn(*args)`` under the engine's routing; returns a future."""
        return self.map(fn, [args], use_device=use_device)[0]

    def map(self, fn: Callable[..., Any], argtuples: Sequence[tuple],
            use_device: bool = True) -> list[Future]:
        """Dispatch ``fn(*args)`` for every tuple; futures in input order.

        With a scheduler, the batch is split into slot-buffer-sized
        chunks and posted as stealable tasks (``/threads/stolen``) — the
        paper's breadth-first distribution, at aggregated granularity; a
        single-chunk batch (``submit`` in particular) is posted directly,
        skipping the fan-out double-hop.  Without a scheduler, the
        calling thread fills one region over the whole batch, so
        buffer-full flushes still overlap device work with the dispatch
        loop.
        """
        argtuples = [tuple(args) for args in argtuples]
        promises = [Promise() for _ in argtuples]
        if _sanitize_state.ACTIVE:
            # declare every ndarray argument as read at dispatch: the
            # post/future edges order these against the kernels, so an
            # unsynchronized mutation of a buffer already handed to the
            # engine surfaces as a two-access report
            label = f"exec:{getattr(fn, '__name__', 'kernel')}"
            for args in argtuples:
                for a in args:
                    if isinstance(a, np.ndarray):
                        _racecheck.access(a, "r", owner=label)
        self.registry.increment("/exec/batches")
        self.registry.increment("/exec/tasks", float(len(argtuples)))
        if self.scheduler is None:
            if argtuples:
                self._run_chunk(fn, argtuples, promises, use_device)
        else:
            size = self.agg_slots
            tasks = [
                (lambda a=argtuples[lo:lo + size], p=promises[lo:lo + size]:
                 self._run_chunk(fn, a, p, use_device))
                for lo in range(0, len(argtuples), size)
            ]
            if len(tasks) == 1:
                # single-task fast path: no fan-out hop for one chunk
                self.scheduler.post(tasks[0])
            elif tasks:

                def fan_out() -> None:
                    self.scheduler.post_batch(tasks)

                self.scheduler.post(fan_out)
        return [p.get_future() for p in promises]

    def synchronize(self) -> None:
        """Drain the scheduler and every device (barrier for diagnostics)."""
        if self.scheduler is not None:
            self.scheduler.wait_idle()
        for dev in self.devices:
            dev.synchronize()

    # -- diagnostics -------------------------------------------------------

    @property
    def gpu_fraction(self) -> float:
        """Fraction of placed kernels that ran on a GPU stream."""
        with self._lock:
            total = self.gpu_launches + self.cpu_launches
            return self.gpu_launches / total if total else 0.0

    @property
    def aggregated_per_launch(self) -> float:
        """Kernels carried per aggregated GPU launch (the coalescing win)."""
        with self._lock:
            return (self.agg_tasks / self.agg_launches
                    if self.agg_launches else 0.0)

    def publish_counters(self, registry: CounterRegistry | None = None
                         ) -> None:
        """Snapshot engine + scheduler + device gauges into ``registry``."""
        registry = registry or self.registry
        with self._lock:
            gpu, cpu = self.gpu_launches, self.cpu_launches
            agg_launches, agg_tasks = self.agg_launches, self.agg_tasks
        total = gpu + cpu
        registry.set_gauge("/exec/launched/gpu", float(gpu))
        registry.set_gauge("/exec/launched/cpu", float(cpu))
        registry.set_gauge("/exec/gpu-fraction",
                           gpu / total if total else 0.0)
        registry.set_gauge("/cuda/aggregated-per-launch",
                           agg_tasks / agg_launches if agg_launches else 0.0)
        if self.scheduler is not None:
            self.scheduler.publish_counters(registry)
        for dev in self.devices:
            dev.publish_counters(registry)
