"""Scenario builders: the verification suite and the V1309 merger.

The four verification tests recommended by Tasker et al. (Sec. 4.2):

1. :func:`sod_tube` — Sod shock tube (analytic solution available);
2. :func:`sedov_blast` — Sedov-Taylor point explosion;
3. :func:`equilibrium_star` — a polytrope in equilibrium at rest;
4. the same star in uniform motion (``velocity`` argument).

Plus :func:`v1309_binary` — a scaled-down contact-binary model of
V1309 Scorpii built with the SCF solver (Sec. 3/6): mass ratio
q = 0.17/1.54 ~ 0.11, synchronous rotation, common envelope.  The paper's
physical parameters (1.02e3 R_sun domain, 6.37 R_sun separation) are kept
as ratios; code units are G = M_primary = a_separation = 1.
"""

from __future__ import annotations

import numpy as np

from .eos import IdealGas
from .grid import EGAS, LX, PASSIVE0, RHO, SX, TAU
from .hydro.solver import HydroOptions
from .mesh import Mesh
from .scf.lane_emden import Polytrope
from .scf.scf import scf_binary

__all__ = ["sod_tube", "sedov_blast", "equilibrium_star", "v1309_binary",
           "V1309_MASS_RATIO", "V1309_SEPARATION_RSUN", "V1309_DOMAIN_RSUN"]

#: Sec. 6: 1.54 + 0.17 M_sun components
V1309_MASS_RATIO = 0.17 / 1.54
V1309_SEPARATION_RSUN = 6.37
V1309_DOMAIN_RSUN = 1.02e3


def sod_tube(n: tuple[int, int, int] = (128, 8, 8), gamma: float = 1.4
             ) -> Mesh:
    """The Sod tube along x on a thin box; analytic solution in
    :mod:`repro.validation.sod`."""
    opts = HydroOptions(eos=IdealGas(gamma=gamma))
    mesh = Mesh(n=n, domain=1.0, options=opts, bc="outflow")
    x, y, z = mesh.cell_centers()
    left = x < 0.5
    rho = np.where(left, 1.0, 0.125) + 0.0 * y + 0.0 * z
    p = np.where(left, 1.0, 0.1) + 0.0 * y + 0.0 * z
    mesh.load_primitives(rho, 0.0, 0.0, 0.0, p)
    # tag the two chambers with passive scalars
    mesh.interior[PASSIVE0] = np.where(left, rho, 0.0)
    mesh.interior[PASSIVE0 + 1] = np.where(left, 0.0, rho)
    return mesh


def sedov_blast(n: int = 32, gamma: float = 1.4, E: float = 1.0,
                rho0: float = 1.0, r_init: float | None = None) -> Mesh:
    """Sedov-Taylor blast: energy E deposited in a small central sphere."""
    opts = HydroOptions(eos=IdealGas(gamma=gamma))
    mesh = Mesh(n=n, domain=1.0, options=opts, bc="outflow")
    x, y, z = mesh.cell_centers()
    r = np.sqrt((x - 0.5) ** 2 + (y - 0.5) ** 2 + (z - 0.5) ** 2)
    p_ambient = 1e-6
    mesh.load_primitives(rho0, 0.0, 0.0, 0.0, p_ambient)
    r0 = r_init if r_init is not None else 2.0 * mesh.dx
    src = r < r0
    n_src = int(src.sum())
    if n_src == 0:
        raise ValueError("initial blast radius below one cell")
    eint = E / (n_src * mesh.dx ** 3)
    I = mesh.interior
    I[EGAS][src] = eint
    I[TAU][src] = opts.eos.tau_from_eint(np.full(n_src, eint))
    return mesh


def equilibrium_star(n: int = 32, domain: float = 4.0, n_poly: float = 1.5,
                     radius: float = 1.0, mass: float = 1.0,
                     velocity: tuple[float, float, float] = (0.0, 0.0, 0.0),
                     rho_floor: float = 1e-10) -> Mesh:
    """A Lane-Emden polytrope in equilibrium, optionally in motion.

    Verification tests 3/4 of Sec. 4.2: the structure should persist.
    gamma = 1 + 1/n so the polytropic relation is adiabatic.
    """
    gamma = 1.0 + 1.0 / n_poly
    opts = HydroOptions(eos=IdealGas(gamma=gamma), rho_floor=rho_floor)
    mesh = Mesh(n=n, domain=domain, origin=(-domain / 2,) * 3,
                options=opts, bc="outflow", self_gravity=True)
    x, y, z = mesh.cell_centers()
    r = np.sqrt(x * x + y * y + z * z)
    star = Polytrope(n=n_poly, radius=radius, mass=mass)
    rho, p = star.profile(r.ravel())
    rho = np.maximum(rho.reshape(r.shape), rho_floor)
    p = np.maximum(p.reshape(r.shape), rho_floor * 1e-4)
    mesh.load_primitives(rho, *velocity, p)
    mesh.interior[PASSIVE0] = np.where(r < radius, rho, 0.0)
    return mesh


def v1309_binary(M: int = 32, mass_ratio: float = V1309_MASS_RATIO,
                 separation: float = 3.0, domain_factor: float = 8.0 / 3.0,
                 rho_floor: float = 1e-8, scf_iters: int = 40) -> Mesh:
    """Scaled-down V1309 contact-binary model, SCF-initialized.

    The mesh rotates with the binary (``options.omega`` is set to the SCF
    orbital frequency); passive scalars tag the two components and the
    common envelope, as in Sec. 4.2.
    """
    scf = scf_binary(M=M, domain=separation * domain_factor,
                     separation=separation, mass_ratio=mass_ratio,
                     max_iter=scf_iters)
    gamma = 1.0 + 1.0 / scf.n_poly
    opts = HydroOptions(eos=IdealGas(gamma=gamma), rho_floor=rho_floor,
                        omega=scf.omega)
    domain = separation * domain_factor
    mesh = Mesh(n=M, domain=domain, origin=(-domain / 2,) * 3,
                options=opts, bc="outflow", self_gravity=True)
    rho = np.maximum(scf.rho, rho_floor)
    p = np.maximum(scf.pressure(), rho_floor * 1e-4)
    mesh.load_primitives(rho, 0.0, 0.0, 0.0, p)
    # passives: accretor (x > mid), donor (x < mid), common atmosphere
    x, y, z = mesh.cell_centers()
    q = mass_ratio
    x1 = separation * q / (1.0 + q)
    x2 = x1 - separation
    mid = 0.5 * (x1 + x2)
    dense = scf.rho > 0.05 * scf.rho.max()
    I = mesh.interior
    I[PASSIVE0] = np.where(dense & (x + 0 * y + 0 * z > mid), rho, 0.0)
    I[PASSIVE0 + 1] = np.where(dense & (x + 0 * y + 0 * z <= mid), rho, 0.0)
    I[PASSIVE0 + 2] = np.where(~dense & (scf.rho > 0), rho, 0.0)
    return mesh
