"""Octo-Tiger core physics: grid, octree AMR, hydro, FMM gravity, SCF."""

from .grid import (SubGrid, RHO, SX, SY, SZ, EGAS, TAU, PASSIVE0, NPASSIVE,
                   LX, LY, LZ, NF, NGHOST, SUBGRID_N, FIELD_NAMES)
from .eos import IdealGas, DEFAULT_GAMMA
from .exec import ExecutionEngine
from .mesh import Mesh, BlockMesh, DistributedMesh, apply_boundary
from .distmesh import DistBlockMesh, BlockComponent, slab_partition
from .octree import Octree, OctreeNode, prolong, restrict
from .amr import AmrMesh
from .hydro.solver import HydroOptions, compute_rhs, cfl_dt
from .gravity.fmm import FmmSolver, FmmLevel, GravityResult
from .gravity.stencil import canonical_stencil, parity_stencils, p2p_stencil
from .scf import (LaneEmdenSolution, solve_lane_emden, Polytrope,
                  ScfResult, scf_single_star, scf_binary)
from .scenario import (sod_tube, sedov_blast, equilibrium_star,
                       v1309_binary, V1309_MASS_RATIO)
from .radiation import (RadiationField, RadiationOptions, m1_closure,
                        radiation_rhs, couple_matter, radiation_dt)
from .stepper import (ConservationMonitor, ConservationRecord, evolve,
                      FaultRecoveryExhausted, GuardViolation, GuardedStepper)

__all__ = [
    "SubGrid", "RHO", "SX", "SY", "SZ", "EGAS", "TAU", "PASSIVE0",
    "NPASSIVE", "LX", "LY", "LZ", "NF", "NGHOST", "SUBGRID_N",
    "FIELD_NAMES", "IdealGas", "DEFAULT_GAMMA",
    "Mesh", "BlockMesh", "DistributedMesh", "apply_boundary",
    "DistBlockMesh", "BlockComponent", "slab_partition",
    "ExecutionEngine",
    "Octree", "OctreeNode", "prolong", "restrict", "AmrMesh",
    "HydroOptions", "compute_rhs", "cfl_dt",
    "FmmSolver", "FmmLevel", "GravityResult",
    "canonical_stencil", "parity_stencils", "p2p_stencil",
    "LaneEmdenSolution", "solve_lane_emden", "Polytrope",
    "ScfResult", "scf_single_star", "scf_binary",
    "sod_tube", "sedov_blast", "equilibrium_star", "v1309_binary",
    "V1309_MASS_RATIO",
    "ConservationMonitor", "ConservationRecord", "evolve",
    "FaultRecoveryExhausted", "GuardViolation", "GuardedStepper",
    "RadiationField", "RadiationOptions", "m1_closure", "radiation_rhs",
    "couple_matter", "radiation_dt",
]
