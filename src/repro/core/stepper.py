"""Coupled evolution driver with conservation monitoring.

Runs a mesh forward in time (gravity + hydro, as ``step`` couples them)
and records the conserved quantities the paper cares about — mass,
linear momentum, angular momentum (orbital plus Despres-Labourasse spin)
and total energy (gas + potential) — so examples and tests can
assert/report drifts.

Any object exposing ``compute_dt() -> float``, ``step(dt)``,
``conserved_totals()``, ``time`` and ``steps`` can be driven: both
:class:`~repro.core.mesh.Mesh` and the multi-sub-grid
:class:`~repro.core.mesh.BlockMesh` (whose futurized scheduler/GPU
execution is thereby exercised end to end).  Checkpoint/rollback
requires a ``U`` state array (single-block :class:`Mesh`) or a
``blocks`` dict (:class:`~repro.core.mesh.BlockMesh`).

Two drivers share the machinery:

* :func:`evolve` — recovers from *announced* faults
  (:class:`~repro.resilience.faults.InjectedFault` raised mid-step).
* :class:`GuardedStepper` — additionally *validates* each step's result:
  NaN/Inf anywhere in the state or a negative density rejects the step,
  rolls back to the latest checkpoint and replays.  A transient cause
  (injected silent corruption, a once-off bad kernel) is retried at the
  **same** dt — the fault's budget is consumed, so the replay is clean
  and the run stays byte-identical to a fault-free one.  Only when the
  guard rejects *the same step again* is the dt halved (a genuinely
  stiff state), with a bounded halving budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..resilience.faults import InjectedFault
from ..runtime import trace
from ..runtime.counters import default_registry
from .grid import NGHOST, RHO
from .mesh import Mesh

__all__ = ["ConservationRecord", "ConservationMonitor", "evolve",
           "FaultRecoveryExhausted", "GuardViolation", "GuardedStepper"]


class FaultRecoveryExhausted(RuntimeError):
    """Checkpoint restores exceeded ``max_restores`` during :func:`evolve`."""


class GuardViolation(RuntimeError):
    """A post-stage guard rejected a step and recovery is impossible
    (no checkpoint manager, or the halving/restore budget ran out)."""


@dataclass(frozen=True)
class ConservationRecord:
    time: float
    step: int
    mass: float
    momentum: np.ndarray
    angular_momentum: np.ndarray
    egas: float
    etot: float | None


@dataclass
class ConservationMonitor:
    """Accumulates conservation records and reports relative drifts."""

    records: list[ConservationRecord] = field(default_factory=list)

    def sample(self, mesh) -> ConservationRecord:
        tot = mesh.conserved_totals()
        rec = ConservationRecord(
            time=mesh.time, step=mesh.steps, mass=tot["mass"],
            momentum=tot["momentum"],
            angular_momentum=tot["angular_momentum"],
            egas=tot["egas"], etot=tot.get("etot"))
        self.records.append(rec)
        return rec

    def drift(self, attr: str) -> float:
        """Relative drift of a scalar quantity since the first record."""
        if len(self.records) < 2:
            return 0.0
        first = getattr(self.records[0], attr)
        last = getattr(self.records[-1], attr)
        if first is None or last is None:
            return np.nan
        scale = abs(first) if abs(first) > 0 else 1.0
        return abs(last - first) / scale

    def vector_drift(self, attr: str, scale: float | None = None) -> float:
        first = getattr(self.records[0], attr)
        last = getattr(self.records[-1], attr)
        s = scale if scale is not None else max(np.abs(first).max(), 1e-30)
        return float(np.abs(last - first).max() / s)

    def report(self) -> dict[str, float]:
        """Relative drifts; vector quantities are normalized by the total
        mass (a momentum scale), which stays meaningful when the initial
        momentum/angular momentum is zero."""
        mass_scale = max(abs(self.records[0].mass), 1e-30)
        return {
            "mass": self.drift("mass"),
            "momentum": self.vector_drift("momentum", scale=mass_scale),
            "angular_momentum": self.vector_drift("angular_momentum",
                                                  scale=mass_scale),
            "egas": self.drift("egas"),
        }


def evolve(mesh, t_end: float, max_steps: int = 10_000,
           monitor: ConservationMonitor | None = None,
           callback=None, checkpoint_interval: int | None = None,
           checkpoints=None, fault_injector=None,
           max_restores: int = 8) -> ConservationMonitor:
    """Advance ``mesh`` to ``t_end`` with CFL-limited steps.

    With ``checkpoint_interval`` (steps) or an explicit ``checkpoints``
    manager (:class:`repro.resilience.checkpoint.CheckpointManager`), the
    mesh state is snapshotted periodically and any
    :class:`~repro.resilience.faults.InjectedFault` raised mid-step — by
    ``fault_injector.maybe_step_fault`` or from within the step itself —
    rolls back to the last checkpoint and replays.  Restores are
    bit-exact, so a faulty run reproduces the fault-free conservation
    drifts (Sec. 4.2/4.3) step for step.  More than ``max_restores``
    rollbacks raises :class:`FaultRecoveryExhausted` — a stuck run fails
    loudly rather than looping forever.
    """
    monitor = monitor or ConservationMonitor()
    if not monitor.records:
        monitor.sample(mesh)
    manager = checkpoints
    if manager is None and checkpoint_interval is not None:
        from ..resilience.checkpoint import CheckpointManager
        manager = CheckpointManager(interval=checkpoint_interval)
    if manager is not None:
        manager.save(mesh, monitor)
    restores = 0
    while mesh.time < t_end and mesh.steps < max_steps:
        try:
            if fault_injector is not None:
                fault_injector.maybe_step_fault(mesh.steps)
            dt = min(mesh.compute_dt(), t_end - mesh.time)
            if not np.isfinite(dt) or dt <= 0:
                raise RuntimeError(f"invalid timestep {dt}")
            mesh.step(dt)
        except InjectedFault:
            if manager is None:
                raise
            restores += 1
            if restores > max_restores:
                raise FaultRecoveryExhausted(
                    f"gave up after {max_restores} checkpoint restores")
            manager.restore_latest(mesh, monitor)
            continue
        monitor.sample(mesh)
        if callback is not None:
            callback(mesh)
        if manager is not None:
            manager.maybe_save(mesh, monitor)
    return monitor


class GuardedStepper:
    """Checkpointed evolution with post-stage state validation.

    After every step the full state is checked for NaN/Inf and negative
    density.  A violation *rejects* the step: the mesh rolls back to the
    latest :class:`~repro.resilience.checkpoint.CheckpointManager`
    snapshot and replays.  The first retry of a step runs at the same dt
    (transient causes — injected corruption with a consumed budget, a
    once-off bad kernel — will not recur, and the replay stays
    byte-identical to the fault-free run); a second rejection of the
    *same* step halves its dt, up to ``max_halvings`` times, after which
    :class:`GuardViolation` is raised.  Announced
    :class:`~repro.resilience.faults.InjectedFault` step faults are
    recovered exactly as in :func:`evolve`, sharing the restore budget.

    With a ``fault_injector`` whose ``corrupt_at_steps`` is set, the
    stepper is its own adversary: after the listed step completes, one
    interior density value is overwritten with NaN — silent data
    corruption that only the guards can catch.

    Counters: ``/resilience/steps/guard-checks``,
    ``/resilience/steps/rejected``, ``/resilience/steps/dt-halvings``,
    ``/resilience/steps/restores``.
    """

    def __init__(self, mesh, *, checkpoints=None, checkpoint_interval=5,
                 monitor: ConservationMonitor | None = None,
                 fault_injector=None, max_restores: int = 16,
                 max_halvings: int = 4, registry=None):
        if max_halvings < 0:
            raise ValueError("max_halvings must be >= 0")
        self.mesh = mesh
        self.registry = registry or default_registry()
        if checkpoints is None:
            from ..resilience.checkpoint import CheckpointManager
            # the injector is threaded into the store too: torn-write and
            # checkpoint-corruption faults strike the very snapshots the
            # guards roll back to, so restores exercise verified fallback
            checkpoints = CheckpointManager(interval=checkpoint_interval,
                                            registry=self.registry,
                                            injector=fault_injector)
        self.checkpoints = checkpoints
        self.monitor = monitor or ConservationMonitor()
        self.injector = fault_injector
        self.max_restores = max_restores
        self.max_halvings = max_halvings
        self.restores = 0
        self.rejected = 0
        self.halvings = 0
        # which step the guard last rejected, and how many times its dt
        # has been halved so far (reset when the step finally passes)
        self._reject_step: int | None = None
        self._step_halvings = 0

    # -- guards --------------------------------------------------------------

    @staticmethod
    def _state_arrays(mesh) -> list[np.ndarray]:
        blocks = getattr(mesh, "blocks", None)
        if blocks is not None:
            return list(blocks.values())
        return [mesh.U]

    def violation(self) -> str | None:
        """Why the current state is unacceptable, or ``None`` if it is fine."""
        self.registry.increment("/resilience/steps/guard-checks")
        for arr in self._state_arrays(self.mesh):
            if not np.all(np.isfinite(arr)):
                return "non-finite state"
            if float(arr[RHO].min()) < 0.0:
                return "negative density"
        return None

    def _corrupt(self) -> None:
        """Deterministic silent damage: NaN one interior density value."""
        arr = self._state_arrays(self.mesh)[0]
        g = NGHOST
        c = g + (arr.shape[1] - 2 * g) // 2
        arr[RHO, c, c, c] = np.nan
        trace.instant("state-corrupted", "resilience", step=self.mesh.steps)

    # -- recovery ------------------------------------------------------------

    def _rollback(self, why: str) -> None:
        self.restores += 1
        if self.restores > self.max_restores:
            raise FaultRecoveryExhausted(
                f"gave up after {self.max_restores} checkpoint restores "
                f"(last cause: {why})")
        self.registry.increment("/resilience/steps/restores")
        self.checkpoints.restore_latest(self.mesh, self.monitor)

    def _reject(self, why: str, step: int) -> None:
        self.rejected += 1
        self.registry.increment("/resilience/steps/rejected")
        trace.instant("step-rejected", "resilience", step=step, cause=why)
        if self._reject_step == step:
            # same step failed again after a clean replay: transiency is
            # ruled out, so shrink the step
            if self._step_halvings >= self.max_halvings:
                raise GuardViolation(
                    f"step {step} still rejected ({why}) after "
                    f"{self.max_halvings} dt halvings")
            self._step_halvings += 1
            self.halvings += 1
            self.registry.increment("/resilience/steps/dt-halvings")
        else:
            self._reject_step = step
            self._step_halvings = 0
        self._rollback(why)

    # -- driving -------------------------------------------------------------

    def evolve(self, t_end: float, max_steps: int = 10_000,
               callback=None) -> ConservationMonitor:
        """Advance to ``t_end`` under guard supervision; see class docs."""
        mesh, monitor = self.mesh, self.monitor
        if not monitor.records:
            monitor.sample(mesh)
        self.checkpoints.save(mesh, monitor)
        while mesh.time < t_end and mesh.steps < max_steps:
            step_index = mesh.steps
            try:
                if self.injector is not None:
                    self.injector.maybe_step_fault(step_index)
                dt = min(mesh.compute_dt(), t_end - mesh.time)
                if not np.isfinite(dt) or dt <= 0:
                    raise RuntimeError(f"invalid timestep {dt}")
                if self._reject_step == step_index and self._step_halvings:
                    dt *= 0.5 ** self._step_halvings
                mesh.step(dt)
            except InjectedFault:
                self._rollback("injected step fault")
                continue
            if self.injector is not None \
                    and self.injector.corruption_due(step_index):
                self._corrupt()
            why = self.violation()
            if why is not None:
                self._reject(why, step_index)
                continue
            if self._reject_step == step_index:
                # the problem step finally passed
                self._reject_step = None
                self._step_halvings = 0
            monitor.sample(mesh)
            if callback is not None:
                callback(mesh)
            self.checkpoints.maybe_save(mesh, monitor)
        return monitor
