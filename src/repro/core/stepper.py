"""Coupled evolution driver with conservation monitoring.

Runs a mesh forward in time (gravity + hydro, as ``step`` couples them)
and records the conserved quantities the paper cares about — mass,
linear momentum, angular momentum (orbital plus Despres-Labourasse spin)
and total energy (gas + potential) — so examples and tests can
assert/report drifts.

Any object exposing ``compute_dt() -> float``, ``step(dt)``,
``conserved_totals()``, ``time`` and ``steps`` can be driven: both
:class:`~repro.core.mesh.Mesh` and the multi-sub-grid
:class:`~repro.core.mesh.BlockMesh` (whose futurized scheduler/GPU
execution is thereby exercised end to end).  Checkpoint/rollback
(``checkpoint_interval``) additionally requires a ``U`` state array,
i.e. a single-block :class:`Mesh`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..resilience.faults import InjectedFault
from .mesh import Mesh

__all__ = ["ConservationRecord", "ConservationMonitor", "evolve",
           "FaultRecoveryExhausted"]


class FaultRecoveryExhausted(RuntimeError):
    """Checkpoint restores exceeded ``max_restores`` during :func:`evolve`."""


@dataclass(frozen=True)
class ConservationRecord:
    time: float
    step: int
    mass: float
    momentum: np.ndarray
    angular_momentum: np.ndarray
    egas: float
    etot: float | None


@dataclass
class ConservationMonitor:
    """Accumulates conservation records and reports relative drifts."""

    records: list[ConservationRecord] = field(default_factory=list)

    def sample(self, mesh) -> ConservationRecord:
        tot = mesh.conserved_totals()
        rec = ConservationRecord(
            time=mesh.time, step=mesh.steps, mass=tot["mass"],
            momentum=tot["momentum"],
            angular_momentum=tot["angular_momentum"],
            egas=tot["egas"], etot=tot.get("etot"))
        self.records.append(rec)
        return rec

    def drift(self, attr: str) -> float:
        """Relative drift of a scalar quantity since the first record."""
        if len(self.records) < 2:
            return 0.0
        first = getattr(self.records[0], attr)
        last = getattr(self.records[-1], attr)
        if first is None or last is None:
            return np.nan
        scale = abs(first) if abs(first) > 0 else 1.0
        return abs(last - first) / scale

    def vector_drift(self, attr: str, scale: float | None = None) -> float:
        first = getattr(self.records[0], attr)
        last = getattr(self.records[-1], attr)
        s = scale if scale is not None else max(np.abs(first).max(), 1e-30)
        return float(np.abs(last - first).max() / s)

    def report(self) -> dict[str, float]:
        """Relative drifts; vector quantities are normalized by the total
        mass (a momentum scale), which stays meaningful when the initial
        momentum/angular momentum is zero."""
        mass_scale = max(abs(self.records[0].mass), 1e-30)
        return {
            "mass": self.drift("mass"),
            "momentum": self.vector_drift("momentum", scale=mass_scale),
            "angular_momentum": self.vector_drift("angular_momentum",
                                                  scale=mass_scale),
            "egas": self.drift("egas"),
        }


def evolve(mesh, t_end: float, max_steps: int = 10_000,
           monitor: ConservationMonitor | None = None,
           callback=None, checkpoint_interval: int | None = None,
           checkpoints=None, fault_injector=None,
           max_restores: int = 8) -> ConservationMonitor:
    """Advance ``mesh`` to ``t_end`` with CFL-limited steps.

    With ``checkpoint_interval`` (steps) or an explicit ``checkpoints``
    manager (:class:`repro.resilience.checkpoint.CheckpointManager`), the
    mesh state is snapshotted periodically and any
    :class:`~repro.resilience.faults.InjectedFault` raised mid-step — by
    ``fault_injector.maybe_step_fault`` or from within the step itself —
    rolls back to the last checkpoint and replays.  Restores are
    bit-exact, so a faulty run reproduces the fault-free conservation
    drifts (Sec. 4.2/4.3) step for step.  More than ``max_restores``
    rollbacks raises :class:`FaultRecoveryExhausted` — a stuck run fails
    loudly rather than looping forever.
    """
    monitor = monitor or ConservationMonitor()
    if not monitor.records:
        monitor.sample(mesh)
    manager = checkpoints
    if manager is None and checkpoint_interval is not None:
        from ..resilience.checkpoint import CheckpointManager
        manager = CheckpointManager(interval=checkpoint_interval)
    if manager is not None:
        manager.save(mesh, monitor)
    restores = 0
    while mesh.time < t_end and mesh.steps < max_steps:
        try:
            if fault_injector is not None:
                fault_injector.maybe_step_fault(mesh.steps)
            dt = min(mesh.compute_dt(), t_end - mesh.time)
            if not np.isfinite(dt) or dt <= 0:
                raise RuntimeError(f"invalid timestep {dt}")
            mesh.step(dt)
        except InjectedFault:
            if manager is None:
                raise
            restores += 1
            if restores > max_restores:
                raise FaultRecoveryExhausted(
                    f"gave up after {max_restores} checkpoint restores")
            manager.restore_latest(mesh, monitor)
            continue
        monitor.sample(mesh)
        if callback is not None:
            callback(mesh)
        if manager is not None:
            manager.maybe_save(mesh, monitor)
    return monitor
