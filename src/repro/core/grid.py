"""Sub-grid state: the 8^3 struct-of-arrays building block (Sec. 4.2).

Octo-Tiger's octree nodes each carry an N^3 sub-grid (N = 8 in all paper
runs) of evolved variables.  Following the paper's optimization story
(Sec. 4.3: "we changed it to a stencil-based approach and are now
utilizing a struct-of-arrays datastructure"), the state is one C-contiguous
``(NF, n, n, n)`` array — field-major, so every kernel streams through
contiguous memory.

Evolved fields (Sec. 4.2):

====  =======  ====================================================
idx   name     meaning
====  =======  ====================================================
0     rho      mass density
1-3   sx..sz   momentum density
4     egas     gas total energy density (internal + kinetic)
5     tau      entropy tracer of the dual-energy formalism
6-10  frac0..4 five passive scalars (accretor core/envelope, donor
               core/envelope, common atmosphere), units of density
11-13 lx..lz   spin angular momentum density (Despres-Labourasse)
====  =======  ====================================================
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "RHO", "SX", "SY", "SZ", "EGAS", "TAU", "PASSIVE0", "NPASSIVE",
    "LX", "LY", "LZ", "NF", "NGHOST", "SUBGRID_N", "SubGrid",
    "FIELD_NAMES",
]

RHO = 0
SX, SY, SZ = 1, 2, 3
EGAS = 4
TAU = 5
PASSIVE0 = 6
NPASSIVE = 5
LX, LY, LZ = 11, 12, 13
NF = 14
#: ghost-cell width (PPM parabolas need 3 upstream cells)
NGHOST = 3
#: sub-grid edge length in cells, as in all the paper's runs
SUBGRID_N = 8

FIELD_NAMES = ("rho", "sx", "sy", "sz", "egas", "tau",
               "frac0", "frac1", "frac2", "frac3", "frac4",
               "lx", "ly", "lz")


class SubGrid:
    """One octree node's N^3 sub-grid plus ghost shell.

    Parameters
    ----------
    origin:
        Physical coordinates of the *lower corner* of the first interior
        cell (ghosts extend below it).
    dx:
        Cell width.
    n:
        Interior cells per edge (default 8).
    """

    __slots__ = ("U", "origin", "dx", "n", "level", "ipos")

    def __init__(self, origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
                 dx: float = 1.0, n: int = SUBGRID_N, level: int = 0,
                 ipos: tuple[int, int, int] = (0, 0, 0)):
        if n < 1:
            raise ValueError("sub-grid edge must be positive")
        self.n = n
        self.dx = float(dx)
        self.origin = tuple(float(c) for c in origin)
        self.level = level
        self.ipos = tuple(ipos)
        m = n + 2 * NGHOST
        self.U = np.zeros((NF, m, m, m), dtype=np.float64)

    # -- views ----------------------------------------------------------------

    @property
    def interior(self) -> np.ndarray:
        """View of the evolved interior region, shape (NF, n, n, n)."""
        g = NGHOST
        return self.U[:, g:g + self.n, g:g + self.n, g:g + self.n]

    def field(self, idx: int) -> np.ndarray:
        """Interior view of one field."""
        return self.interior[idx]

    # -- geometry ---------------------------------------------------------------

    def cell_centers(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Interior cell-centre coordinate arrays (broadcastable 3-D)."""
        n, dx = self.n, self.dx
        ax = [self.origin[d] + (np.arange(n) + 0.5) * dx for d in range(3)]
        return (ax[0][:, None, None], ax[1][None, :, None],
                ax[2][None, None, :])

    @property
    def cell_volume(self) -> float:
        return self.dx ** 3

    # -- diagnostics ------------------------------------------------------------------

    def total_mass(self) -> float:
        return float(self.field(RHO).sum()) * self.cell_volume

    def total_momentum(self) -> np.ndarray:
        v = self.cell_volume
        return np.array([float(self.field(SX).sum()),
                         float(self.field(SY).sum()),
                         float(self.field(SZ).sum())]) * v

    def total_energy(self) -> float:
        return float(self.field(EGAS).sum()) * self.cell_volume

    def total_angular_momentum(self) -> np.ndarray:
        """Orbital (x cross s) plus spin angular momentum of the interior."""
        x, y, z = self.cell_centers()
        sx, sy, sz = (self.field(SX), self.field(SY), self.field(SZ))
        v = self.cell_volume
        lx = float((y * sz - z * sy).sum()) + float(self.field(LX).sum())
        ly = float((z * sx - x * sz).sum()) + float(self.field(LY).sum())
        lz = float((x * sy - y * sx).sum()) + float(self.field(LZ).sum())
        return np.array([lx, ly, lz]) * v

    def copy(self) -> "SubGrid":
        out = SubGrid(self.origin, self.dx, self.n, self.level, self.ipos)
        out.U[...] = self.U
        return out

    def __repr__(self) -> str:
        return (f"SubGrid(n={self.n}, dx={self.dx:g}, level={self.level}, "
                f"ipos={self.ipos})")
