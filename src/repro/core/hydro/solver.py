"""The unsplit finite-volume update (Sec. 4.2).

Combines PPM/minmod reconstruction with Kurganov-Tadmor fluxes into the
conservative right-hand side of one block, adds gravity and rotating-frame
sources, and implements the angular-momentum bookkeeping of Despres &
Labourasse (2015) as used by Octo-Tiger: a spin field absorbs exactly the
angular momentum the cell-centred momentum update cannot represent, so

    sum_cells [ x cross s + l ]

changes only through boundary fluxes (conserved to machine precision on a
closed domain — the Sec. 4.2 claim, tested in
``tests/core/test_hydro_conservation.py``).

The module is dimension-agnostic: blocks are (NF, m, m, m) arrays with
``NGHOST`` ghost layers, of any interior size (one 8^3 sub-grid or a whole
mesh block).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..eos import IdealGas
from ..grid import EGAS, LX, NF, NGHOST, RHO, SX, TAU
from .reconstruct import minmod_faces, ppm_faces
from .riemann import conserved_to_primitive, kt_flux

__all__ = ["HydroOptions", "compute_rhs", "cfl_dt", "rk2_step"]


@dataclass
class HydroOptions:
    """Solver configuration."""

    eos: IdealGas
    reconstruction: str = "ppm"            # "ppm" | "minmod"
    cfl: float = 0.4
    rho_floor: float = 1e-12
    #: angular velocity of the rotating frame about z (Sec. 4.2: "a
    #: rotating Cartesian grid"); 0 = inertial frame
    omega: float = 0.0
    #: evolve the Despres-Labourasse spin correction
    spin_correction: bool = True


def _faces(q: np.ndarray, axis: int, options: HydroOptions):
    # spatial axis `axis` is array dimension axis + 1 (dim 0 = field)
    if options.reconstruction == "ppm":
        return ppm_faces(q, NGHOST, axis + 1)
    if options.reconstruction == "minmod":
        return minmod_faces(q, NGHOST, axis + 1)
    raise ValueError(f"unknown reconstruction {options.reconstruction!r}")


def compute_rhs(U: np.ndarray, dx: float, options: HydroOptions,
                origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
                gravity: np.ndarray | None = None,
                return_fluxes: bool = False):
    """dU/dt of the interior of a ghost-filled block.

    Parameters
    ----------
    U:
        Conserved block (NF, n+2g, n+2g, n+2g), ghosts filled.
    dx:
        Cell width.
    origin:
        Physical coordinates of the lower corner of the interior (needed
        for the spin correction torque arms and frame sources).
    gravity:
        Optional (3, n, n, n) acceleration field on the interior.
    return_fluxes:
        Also return the per-axis face-flux arrays (for AMR refluxing).

    Returns ``rhs`` with shape (NF, n, n, n) (plus fluxes if requested).
    """
    g = NGHOST
    shape = tuple(U.shape[1 + d] - 2 * g for d in range(3))
    eos = options.eos
    W = conserved_to_primitive(U, eos, options.rho_floor)
    rhs = np.zeros((NF,) + shape)
    fluxes = []

    for axis in range(3):
        WL, WR = _faces(W, axis, options)
        # restrict the transverse extents to the interior
        sl = [slice(None)] + [slice(g, g + shape[d]) for d in range(3)]
        sl[1 + axis] = slice(None)
        WL = WL[tuple(sl)]
        WR = WR[tuple(sl)]
        F = kt_flux(WL, WR, eos, axis)
        n = shape[axis]
        lo = [slice(None)] * 4
        hi = [slice(None)] * 4
        lo[1 + axis] = slice(0, n)
        hi[1 + axis] = slice(1, n + 1)
        rhs += (F[tuple(lo)] - F[tuple(hi)]) / dx
        if options.spin_correction:
            _add_spin_correction(rhs, F, axis, n)
        if return_fluxes:
            fluxes.append(F)

    _add_sources(rhs, U, shape, dx, origin, options, gravity)
    if return_fluxes:
        return rhs, fluxes
    return rhs


def _add_spin_correction(rhs: np.ndarray, F: np.ndarray, axis: int,
                         n: int) -> None:
    """Despres-Labourasse spin source: the face momentum fluxes deposit
    the angular momentum that the cell-centred arms x_i cross s_i miss.

    Derivation: choosing dl_i/dt = -(dx/2) e_ax cross (F_{i+1/2} +
    F_{i-1/2}) / dx makes sum(x cross s + l) follow the conservative
    angular-momentum flux x_face cross F_face, which telescopes.
    """
    lo = [slice(None)] * 4
    hi = [slice(None)] * 4
    lo[1 + axis] = slice(0, n)
    hi[1 + axis] = slice(1, n + 1)
    fsum = F[tuple(lo)] + F[tuple(hi)]          # F_minus + F_plus
    sx, sy, sz = fsum[SX], fsum[SX + 1], fsum[SX + 2]
    # e_ax cross (sx, sy, sz); factor -(1/2) from the derivation
    if axis == 0:
        cx, cy, cz = 0.0 * sx, -sz, sy
    elif axis == 1:
        cx, cy, cz = sz, 0.0 * sx, -sx
    else:
        cx, cy, cz = -sy, sx, 0.0 * sx
    rhs[LX] += -0.5 * cx
    rhs[LX + 1] += -0.5 * cy
    rhs[LX + 2] += -0.5 * cz


def _add_sources(rhs: np.ndarray, U: np.ndarray, shape: tuple, dx: float,
                 origin: tuple[float, float, float], options: HydroOptions,
                 gravity: np.ndarray | None) -> None:
    g = NGHOST
    inner = tuple(slice(g, g + shape[d]) for d in range(3))
    rho = U[(RHO,) + inner]
    s = [U[(SX + d,) + inner] for d in range(3)]
    if gravity is not None:
        for d in range(3):
            rhs[SX + d] += rho * gravity[d]
        rhs[EGAS] += s[0] * gravity[0] + s[1] * gravity[1] \
            + s[2] * gravity[2]
    om = options.omega
    if om != 0.0:
        ax = [origin[d] + (np.arange(shape[d]) + 0.5) * dx
              for d in range(3)]
        x = ax[0][:, None, None]
        y = ax[1][None, :, None]
        # rotating frame about z: Coriolis -2 Omega x s, centrifugal
        # rho Omega^2 x_perp; the centrifugal term does work on the gas
        rhs[SX] += 2.0 * om * s[1] + rho * om * om * x
        rhs[SX + 1] += -2.0 * om * s[0] + rho * om * om * y
        rhs[EGAS] += om * om * (x * s[0] + y * s[1])


def cfl_dt(U: np.ndarray, dx: float, options: HydroOptions) -> float:
    """CFL-limited timestep of a ghost-filled block's interior."""
    g = NGHOST
    inner = (slice(None),) + tuple(
        slice(g, U.shape[1 + d] - g) for d in range(3))
    W = conserved_to_primitive(U[inner], options.eos, options.rho_floor)
    c = options.eos.sound_speed(W[RHO], W[EGAS])
    vmax = 0.0
    for d in range(3):
        vmax = np.maximum(vmax, np.abs(W[SX + d]) + c)
    peak = float(np.max(vmax))
    if peak <= 0.0:
        return np.inf
    return options.cfl * dx / peak


def rk2_step(U: np.ndarray, dt: float, dx: float, options: HydroOptions,
             fill_ghosts, origin=(0.0, 0.0, 0.0),
             gravity: np.ndarray | None = None) -> None:
    """Heun (SSP-RK2) update of a block, in place.

    ``fill_ghosts(U)`` must populate the ghost shell (boundary conditions
    and/or neighbour exchange); it is called before each stage.
    """
    g = NGHOST
    n = U.shape[1] - 2 * g
    inner = (slice(None),) + (slice(g, g + n),) * 3
    fill_ghosts(U)
    k1 = compute_rhs(U, dx, options, origin, gravity)
    U1 = U.copy()
    U1[inner] += dt * k1
    _apply_floors(U1, options)
    fill_ghosts(U1)
    k2 = compute_rhs(U1, dx, options, origin, gravity)
    U[inner] += 0.5 * dt * (k1 + k2)
    _apply_floors(U, options)
    _dual_energy_sync(U, inner, options)


def _apply_floors(U: np.ndarray, options: HydroOptions) -> None:
    np.maximum(U[RHO], options.rho_floor, out=U[RHO])
    np.maximum(U[TAU], 0.0, out=U[TAU])


def _dual_energy_sync(U: np.ndarray, inner, options: HydroOptions) -> None:
    eos = options.eos
    Ui = U[inner]
    Ui[TAU] = eos.sync_tau(Ui[RHO], Ui[SX], Ui[SX + 1], Ui[SX + 2],
                           Ui[EGAS], Ui[TAU])
