"""The unsplit finite-volume update (Sec. 4.2).

Combines PPM/minmod reconstruction with Kurganov-Tadmor fluxes into the
conservative right-hand side of one block, adds gravity and rotating-frame
sources, and implements the angular-momentum bookkeeping of Despres &
Labourasse (2015) as used by Octo-Tiger: a spin field absorbs exactly the
angular momentum the cell-centred momentum update cannot represent, so

    sum_cells [ x cross s + l ]

changes only through boundary fluxes (conserved to machine precision on a
closed domain — the Sec. 4.2 claim, tested in
``tests/core/test_hydro_conservation.py``).

The module is dimension-agnostic: blocks are (NF, m, m, m) arrays with
``NGHOST`` ghost layers, of any interior size (one 8^3 sub-grid or a whole
mesh block).

Scratch and fusion (Sec. 4.3 kernel rework): :func:`compute_rhs`,
:func:`rk2_step` and :func:`cfl_dt` accept a
:class:`repro.core.workspace.Workspace` (and ``compute_rhs`` an ``out=``
array) so steady-state stepping reuses the primitive block, face states
and flux arrays across stages and steps instead of reallocating ~14
full-field temporaries per axis per stage.  The fused path is bitwise
identical to :func:`compute_rhs_reference`, which keeps the original
allocate-per-stage kernel composition as the test oracle and
microbenchmark baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...sanitize import racecheck as _racecheck
from ...sanitize import state as _sanitize_state
from ..eos import IdealGas
from ..grid import EGAS, LX, NF, NGHOST, RHO, SX, TAU
from .reconstruct import minmod_faces, ppm_faces
from .riemann import (conserved_signal_speed, conserved_to_primitive,
                      kt_flux, kt_flux_reference)

__all__ = ["HydroOptions", "compute_rhs", "compute_rhs_reference",
           "cfl_dt", "rk2_step", "apply_floors"]


@dataclass
class HydroOptions:
    """Solver configuration."""

    eos: IdealGas
    reconstruction: str = "ppm"            # "ppm" | "minmod"
    cfl: float = 0.4
    rho_floor: float = 1e-12
    #: angular velocity of the rotating frame about z (Sec. 4.2: "a
    #: rotating Cartesian grid"); 0 = inertial frame
    omega: float = 0.0
    #: evolve the Despres-Labourasse spin correction
    spin_correction: bool = True

    def __post_init__(self):
        # one definition of vacuum for the whole stack: the EOS clamps in
        # sound_speed/kinetic must agree with the floor applied to the
        # state, or a cell below the solver floor divides by a smaller
        # number than the solver ever allows (see eos.IdealGas).
        self.eos.rho_floor = self.rho_floor


def _faces(q: np.ndarray, axis: int, options: HydroOptions, ws=None):
    # spatial axis `axis` is array dimension axis + 1 (dim 0 = field)
    ax = axis + 1
    if options.reconstruction == "ppm":
        return ppm_faces(q, NGHOST, ax, ws=ws)
    if options.reconstruction == "minmod":
        return minmod_faces(q, NGHOST, ax, ws=ws)
    raise ValueError(f"unknown reconstruction {options.reconstruction!r}")


def compute_rhs(U: np.ndarray, dx: float, options: HydroOptions,
                origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
                gravity: np.ndarray | None = None,
                return_fluxes: bool = False,
                out: np.ndarray | None = None, ws=None):
    """dU/dt of the interior of a ghost-filled block (fused path).

    Parameters
    ----------
    U:
        Conserved block (NF, n+2g, n+2g, n+2g), ghosts filled.
    dx:
        Cell width.
    origin:
        Physical coordinates of the lower corner of the interior (needed
        for the spin correction torque arms and frame sources).
    gravity:
        Optional (3, n, n, n) acceleration field on the interior.
    return_fluxes:
        Also return the per-axis face-flux arrays (for AMR refluxing).
        Flux arrays are then freshly allocated — never workspace views —
        so the caller may hold them across further solver calls.
    out:
        Optional (NF, n, n, n) output; fully overwritten.
    ws:
        Optional :class:`repro.core.workspace.Workspace` backing the
        primitive block, face states and flux scratch.

    Returns ``rhs`` with shape (NF, n, n, n) (plus fluxes if requested).
    """
    g = NGHOST
    shape = tuple(U.shape[1 + d] - 2 * g for d in range(3))
    eos = options.eos
    W = conserved_to_primitive(U, eos, options.rho_floor, ws=ws)
    if out is not None:
        rhs = out
    elif ws is not None:
        rhs = ws.buf("rhs:out", (NF,) + shape)
    else:
        rhs = np.empty((NF,) + shape)
    if _sanitize_state.ACTIVE:
        # shadow-access declarations: this task body reads the conserved
        # block (and gravity) and overwrites the shared out= buffer
        _racecheck.access(U, "r", owner="hydro/U")
        if gravity is not None:
            _racecheck.access(gravity, "r", owner="hydro/gravity")
        _racecheck.access(rhs, "w", owner="hydro/rhs-out")
    rhs[...] = 0.0
    fluxes = []

    for axis in range(3):
        # restrict the transverse extents to the interior *before*
        # reconstructing: PPM is elementwise across transverse columns,
        # so skipping ghost columns whose faces would be discarded is
        # bitwise-neutral and trims (n+2g)^2/n^2 of the reconstruction
        sl = [slice(None)] + [slice(g, g + shape[d]) for d in range(3)]
        sl[1 + axis] = slice(None)
        WL, WR = _faces(W[tuple(sl)], axis, options, ws)
        if return_fluxes:
            F = kt_flux(WL, WR, eos, axis)
        else:
            F = kt_flux(WL, WR, eos, axis, ws=ws)
        n = shape[axis]
        lo = [slice(None)] * 4
        hi = [slice(None)] * 4
        lo[1 + axis] = slice(0, n)
        hi[1 + axis] = slice(1, n + 1)
        rhs += (F[tuple(lo)] - F[tuple(hi)]) / dx
        if options.spin_correction:
            _add_spin_correction(rhs, F, axis, n)
        if return_fluxes:
            fluxes.append(F)

    _add_sources(rhs, U, shape, dx, origin, options, gravity)
    if return_fluxes:
        return rhs, fluxes
    return rhs


def compute_rhs_reference(U: np.ndarray, dx: float, options: HydroOptions,
                          origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
                          gravity: np.ndarray | None = None):
    """The RHS as the original allocate-per-stage kernel composition.

    Kept as the bitwise oracle for ``tests/core/test_kernel_fusion.py``
    and the baseline side of the ``kernels_micro`` benchmark; production
    callers use :func:`compute_rhs`.
    """
    g = NGHOST
    shape = tuple(U.shape[1 + d] - 2 * g for d in range(3))
    eos = options.eos
    W = conserved_to_primitive(U, eos, options.rho_floor)
    rhs = np.zeros((NF,) + shape)
    for axis in range(3):
        WL, WR = _faces(W, axis, options)
        sl = [slice(None)] + [slice(g, g + shape[d]) for d in range(3)]
        sl[1 + axis] = slice(None)
        F = kt_flux_reference(WL[tuple(sl)], WR[tuple(sl)], eos, axis)
        n = shape[axis]
        lo = [slice(None)] * 4
        hi = [slice(None)] * 4
        lo[1 + axis] = slice(0, n)
        hi[1 + axis] = slice(1, n + 1)
        rhs += (F[tuple(lo)] - F[tuple(hi)]) / dx
        if options.spin_correction:
            _add_spin_correction(rhs, F, axis, n)
    _add_sources(rhs, U, shape, dx, origin, options, gravity)
    return rhs


def _add_spin_correction(rhs: np.ndarray, F: np.ndarray, axis: int,
                         n: int) -> None:
    """Despres-Labourasse spin source: the face momentum fluxes deposit
    the angular momentum that the cell-centred arms x_i cross s_i miss.

    Derivation: choosing dl_i/dt = -(dx/2) e_ax cross (F_{i+1/2} +
    F_{i-1/2}) / dx makes sum(x cross s + l) follow the conservative
    angular-momentum flux x_face cross F_face, which telescopes.
    """
    lo = [slice(None)] * 4
    hi = [slice(None)] * 4
    lo[1 + axis] = slice(0, n)
    hi[1 + axis] = slice(1, n + 1)
    fsum = F[tuple(lo)] + F[tuple(hi)]          # F_minus + F_plus
    sx, sy, sz = fsum[SX], fsum[SX + 1], fsum[SX + 2]
    # e_ax cross (sx, sy, sz); factor -(1/2) from the derivation
    if axis == 0:
        cx, cy, cz = 0.0 * sx, -sz, sy
    elif axis == 1:
        cx, cy, cz = sz, 0.0 * sx, -sx
    else:
        cx, cy, cz = -sy, sx, 0.0 * sx
    rhs[LX] += -0.5 * cx
    rhs[LX + 1] += -0.5 * cy
    rhs[LX + 2] += -0.5 * cz


def _add_sources(rhs: np.ndarray, U: np.ndarray, shape: tuple, dx: float,
                 origin: tuple[float, float, float], options: HydroOptions,
                 gravity: np.ndarray | None) -> None:
    g = NGHOST
    inner = tuple(slice(g, g + shape[d]) for d in range(3))
    rho = U[(RHO,) + inner]
    s = [U[(SX + d,) + inner] for d in range(3)]
    if gravity is not None:
        for d in range(3):
            rhs[SX + d] += rho * gravity[d]
        rhs[EGAS] += s[0] * gravity[0] + s[1] * gravity[1] \
            + s[2] * gravity[2]
    om = options.omega
    if om != 0.0:
        ax = [origin[d] + (np.arange(shape[d]) + 0.5) * dx
              for d in range(3)]
        x = ax[0][:, None, None]
        y = ax[1][None, :, None]
        # rotating frame about z: Coriolis -2 Omega x s, centrifugal
        # rho Omega^2 x_perp; the centrifugal term does work on the gas
        rhs[SX] += 2.0 * om * s[1] + rho * om * om * x
        rhs[SX + 1] += -2.0 * om * s[0] + rho * om * om * y
        rhs[EGAS] += om * om * (x * s[0] + y * s[1])


def cfl_dt(U: np.ndarray, dx: float, options: HydroOptions,
           ws=None) -> float:
    """CFL-limited timestep of a ghost-filled block's interior.

    Routed through the fused :func:`conserved_signal_speed` — the old
    path materialized a full 14-field primitive copy of the interior just
    to read density, velocities and pressure.  The resulting dt is
    bitwise identical.
    """
    g = NGHOST
    inner = (slice(None),) + tuple(
        slice(g, U.shape[1 + d] - g) for d in range(3))
    vmax = conserved_signal_speed(U[inner], options.eos,
                                  options.rho_floor, ws=ws)
    peak = float(np.max(vmax))
    if peak <= 0.0:
        return np.inf
    return options.cfl * dx / peak


def rk2_step(U: np.ndarray, dt: float, dx: float, options: HydroOptions,
             fill_ghosts, origin=(0.0, 0.0, 0.0),
             gravity: np.ndarray | None = None, ws=None) -> None:
    """Heun (SSP-RK2) update of a block, in place.

    ``fill_ghosts(U)`` must populate the ghost shell (boundary conditions
    and/or neighbour exchange); it is called before each stage.  With a
    workspace, both stage RHS arrays and the predictor state live in
    reused scratch.
    """
    g = NGHOST
    n = U.shape[1] - 2 * g
    inner = (slice(None),) + (slice(g, g + n),) * 3
    if _sanitize_state.ACTIVE:
        # the whole step mutates U in place (stage update + floors + tau)
        _racecheck.access(U, "w", owner="hydro/rk2-U")
        if gravity is not None:
            _racecheck.access(gravity, "r", owner="hydro/gravity")
    fill_ghosts(U)
    if ws is not None:
        k1 = compute_rhs(U, dx, options, origin, gravity,
                         out=ws.buf("rk2:k1", (NF, n, n, n)), ws=ws)
        U1 = ws.buf("rk2:U1", U.shape)
        np.copyto(U1, U)
    else:
        k1 = compute_rhs(U, dx, options, origin, gravity)
        U1 = U.copy()
    U1[inner] += dt * k1
    apply_floors(U1, options)
    fill_ghosts(U1)
    k2 = compute_rhs(U1, dx, options, origin, gravity,
                     out=ws.buf("rk2:k2", (NF, n, n, n))
                     if ws is not None else None, ws=ws)
    U[inner] += 0.5 * dt * (k1 + k2)
    apply_floors(U, options)
    _dual_energy_sync(U, inner, options)


def apply_floors(U: np.ndarray, options: HydroOptions) -> None:
    """Vacuum floors, in place: raise rho, zero the raised cells' momenta,
    clamp tau nonnegative.

    Zeroing the momenta is the fix for the stale-kinetic-energy bug:
    raising rho while keeping the momentum of the evacuated cell leaves a
    kinetic energy s^2/(2 rho) computed at the *post-floor* density that
    can dwarf egas, driving the dual-energy ``diff = egas - kin`` wildly
    negative and locking the cell onto a stale tau tracer.  A cell thin
    enough to be floored carries no meaningful momentum.
    """
    rho = U[RHO]
    floored = rho < options.rho_floor
    if floored.any():
        for d in range(3):
            U[SX + d][floored] = 0.0
    np.maximum(rho, options.rho_floor, out=rho)
    np.maximum(U[TAU], 0.0, out=U[TAU])


# back-compat spelling; the floors are part of the public stepping contract
_apply_floors = apply_floors


def _dual_energy_sync(U: np.ndarray, inner, options: HydroOptions) -> None:
    eos = options.eos
    Ui = U[inner]
    Ui[TAU] = eos.sync_tau(Ui[RHO], Ui[SX], Ui[SX + 1], Ui[SX + 2],
                           Ui[EGAS], Ui[TAU])
