"""Face reconstruction: piece-wise parabolic method (PPM) and minmod.

Octo-Tiger computes thermodynamic variables at cell faces with PPM
(Colella & Woodward 1984, Sec. 4.2).  The implementation reconstructs
left/right states at every interior face along one axis, vectorized over
the whole block; the minmod (MUSCL) limiter is available as the robust
fallback and as the cheaper option for tests.

Conventions: input arrays have ``ng`` ghost layers on each side along the
reconstruction axis; output face arrays cover the ``n + 1`` interior faces
(face ``f`` sits between interior cells ``f-1`` and ``f``), with ``qL``
the state just left of the face and ``qR`` just right.

Both kernels take ``out=(qL, qR)`` so a caller-owned buffer pair absorbs
the per-stage face-state churn, and ``ws=`` (a
:class:`repro.core.workspace.Workspace`) for the fully fused path: every
intermediate lives in reused scratch, nothing is allocated, and the
returned face arrays are views into workspace buffers (valid until the
next reconstruction of the same shape along the same axis).  The values
written are bitwise identical to the allocating path — only buffer
reuse and ``out=`` routing change, never the arithmetic expressions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["minmod_faces", "ppm_faces"]


def _ax(q: np.ndarray, lo: int, hi: int | None, axis: int) -> np.ndarray:
    sl = [slice(None)] * q.ndim
    sl[axis] = slice(lo, hi)
    return q[tuple(sl)]


def minmod_faces(q: np.ndarray, ng: int, axis: int,
                 out: tuple[np.ndarray, np.ndarray] | None = None,
                 ws=None) -> tuple[np.ndarray, np.ndarray]:
    """Second-order MUSCL states (qL, qR) at the n+1 interior faces."""
    n = q.shape[axis] - 2 * ng
    if out is None and ws is not None:
        fshape = list(q.shape)
        fshape[axis] = n + 1
        out = (ws.buf(f"mm:L{axis}", tuple(fshape)),
               ws.buf(f"mm:R{axis}", tuple(fshape)))
    qm = _ax(q, ng - 2, ng + n + 2, axis)           # cells -2 .. n+1
    d_lo = _ax(qm, 1, -1, axis) - _ax(qm, 0, -2, axis)
    d_hi = _ax(qm, 2, None, axis) - _ax(qm, 1, -1, axis)
    slope = np.where(d_lo * d_hi > 0.0,
                     np.where(np.abs(d_lo) < np.abs(d_hi), d_lo, d_hi), 0.0)
    center = _ax(qm, 1, -1, axis)                   # cells -1 .. n
    if out is None:
        plus = center + 0.5 * slope
        minus = center - 0.5 * slope
        return _ax(plus, 0, -1, axis), _ax(minus, 1, None, axis)
    # same arithmetic, sliced first and written straight into the caller's
    # face buffers (0.5*slope then +/- center is elementwise, so slicing
    # before or after the combine yields the same bits)
    qL, qR = out
    np.multiply(_ax(slope, 0, -1, axis), 0.5, out=qL)
    np.add(qL, _ax(center, 0, -1, axis), out=qL)
    np.multiply(_ax(slope, 1, None, axis), 0.5, out=qR)
    np.subtract(_ax(center, 1, None, axis), qR, out=qR)
    return qL, qR


def ppm_faces(q: np.ndarray, ng: int, axis: int,
              out: tuple[np.ndarray, np.ndarray] | None = None,
              ws=None) -> tuple[np.ndarray, np.ndarray]:
    """PPM states (qL, qR) at the n+1 interior faces.

    Fourth-order face interpolation followed by the Colella-Woodward
    monotonization of each cell's parabola.  With ``ws`` the whole
    kernel runs in reused scratch with in-place ufuncs (the fused hot
    path); the returned faces are then views into workspace buffers.
    """
    if ng < 3:
        raise ValueError("PPM needs at least 3 ghost layers")
    if ws is not None:
        return _ppm_faces_ws(q, ng, axis, out, ws)
    n = q.shape[axis] - 2 * ng
    # C holds cells -3 .. n+2 (length n+6) along `axis`
    C = _ax(q, ng - 3, ng + n + 3, axis)
    # F[j] = face value left of cell j-1, for j = 0 .. n+2
    F = (7.0 / 12.0) * (_ax(C, 1, -2, axis) + _ax(C, 2, -1, axis)) \
        - (1.0 / 12.0) * (_ax(C, 0, -3, axis) + _ax(C, 3, None, axis))
    # parabola cells -1 .. n
    c = _ax(C, 2, -2, axis)
    left = _ax(C, 1, -3, axis)                      # cell i-1
    right = _ax(C, 3, -1, axis)                     # cell i+1
    lo = _ax(F, 0, -1, axis)
    hi = _ax(F, 1, None, axis)

    lo = np.clip(lo, np.minimum(left, c), np.maximum(left, c))
    hi = np.clip(hi, np.minimum(c, right), np.maximum(c, right))
    extremum = (hi - c) * (c - lo) <= 0.0
    lo = np.where(extremum, c, lo)
    hi = np.where(extremum, c, hi)
    dqf = hi - lo
    avg = 0.5 * (lo + hi)
    six = dqf * dqf / 6.0
    steep_hi = dqf * (c - avg) > six
    lo = np.where(steep_hi, 3.0 * c - 2.0 * hi, lo)
    steep_lo = -six > dqf * (c - avg)
    hi = np.where(steep_lo, 3.0 * c - 2.0 * lo, hi)

    if out is None:
        return _ax(hi, 0, -1, axis), _ax(lo, 1, None, axis)
    qL, qR = out
    np.copyto(qL, _ax(hi, 0, -1, axis))             # cells -1 .. n-1
    np.copyto(qR, _ax(lo, 1, None, axis))           # cells  0 .. n
    return qL, qR


def _ppm_faces_ws(q: np.ndarray, ng: int, axis: int,
                  out: tuple[np.ndarray, np.ndarray] | None,
                  ws) -> tuple[np.ndarray, np.ndarray]:
    """Workspace-fused PPM: identical arithmetic, zero allocations.

    Every step mirrors an expression of :func:`ppm_faces` exactly —
    scalar multiplies are commuted (exact), ``np.where`` becomes a
    masked ``np.copyto`` onto the same "else" values, and ``np.clip``
    runs with ``out=`` — so the results are bitwise identical.

    Field-major blocks are processed one field at a time: the ~10
    intermediate arrays then cover a single field and stay resident in
    cache across the ~30 elementwise passes instead of streaming the
    whole block from DRAM every pass.  Per-field chunking of elementwise
    arithmetic is bitwise-neutral.
    """
    n = q.shape[axis] - 2 * ng
    sh2 = list(q.shape)
    sh2[axis] = n + 2
    sh2 = tuple(sh2)
    lo = ws.buf(f"ppm:lo{axis}", sh2)
    hi = ws.buf(f"ppm:hi{axis}", sh2)
    if q.ndim == 4 and axis != 0:
        for f in range(q.shape[0]):                 # per-field chunking
            _ppm_one_ws(q[f], ng, axis - 1, lo[f], hi[f], ws)
    else:
        _ppm_one_ws(q, ng, axis, lo, hi, ws)
    if out is None:
        return _ax(hi, 0, -1, axis), _ax(lo, 1, None, axis)
    qL, qR = out
    np.copyto(qL, _ax(hi, 0, -1, axis))
    np.copyto(qR, _ax(lo, 1, None, axis))
    return qL, qR


def _ppm_one_ws(q: np.ndarray, ng: int, axis: int,
                lo: np.ndarray, hi: np.ndarray, ws) -> None:
    """One PPM reconstruction into ``lo``/``hi`` using ``ws`` scratch."""
    n = q.shape[axis] - 2 * ng
    shF = list(q.shape)
    shF[axis] = n + 3
    shF = tuple(shF)
    sh2 = lo.shape

    C = _ax(q, ng - 3, ng + n + 3, axis)            # view: cells -3 .. n+2
    F = ws.buf(f"ppm:F{axis}", shF)
    t = ws.buf(f"ppm:t{axis}", shF)
    # F = 7/12 (C1 + C2) - 1/12 (C0 + C3)
    np.add(_ax(C, 1, -2, axis), _ax(C, 2, -1, axis), out=F)
    F *= 7.0 / 12.0
    np.add(_ax(C, 0, -3, axis), _ax(C, 3, None, axis), out=t)
    t *= 1.0 / 12.0
    F -= t

    c = _ax(C, 2, -2, axis)
    left = _ax(C, 1, -3, axis)
    right = _ax(C, 3, -1, axis)
    a = ws.buf(f"ppm:a{axis}", sh2)
    b = ws.buf(f"ppm:b{axis}", sh2)
    mask = ws.buf(f"ppm:mask{axis}", sh2, dtype=bool)

    np.minimum(left, c, out=a)
    np.maximum(left, c, out=b)
    np.clip(_ax(F, 0, -1, axis), a, b, out=lo)
    np.minimum(c, right, out=a)
    np.maximum(c, right, out=b)
    np.clip(_ax(F, 1, None, axis), a, b, out=hi)

    # extremum = (hi - c) * (c - lo) <= 0  ->  lo = hi = c there
    np.subtract(hi, c, out=a)
    np.subtract(c, lo, out=b)
    np.multiply(a, b, out=a)
    np.less_equal(a, 0.0, out=mask)
    np.copyto(lo, c, where=mask)
    np.copyto(hi, c, where=mask)

    dqf = ws.buf(f"ppm:dqf{axis}", sh2)
    np.subtract(hi, lo, out=dqf)
    # avg = 0.5 * (lo + hi); six = dqf * dqf / 6
    np.add(lo, hi, out=a)
    a *= 0.5
    six = ws.buf(f"ppm:six{axis}", sh2)
    np.multiply(dqf, dqf, out=six)
    six /= 6.0
    # prod = dqf * (c - avg): computed once; the reference evaluates the
    # same expression twice on unchanged inputs, so reuse is exact
    np.subtract(c, a, out=a)                        # a = c - avg
    np.multiply(dqf, a, out=a)                      # a = prod
    np.greater(a, six, out=mask)                    # steep toward hi
    np.multiply(hi, 2.0, out=dqf)                   # dqf now scratch
    np.multiply(c, 3.0, out=b)
    b -= dqf                                        # 3c - 2 hi
    np.copyto(lo, b, where=mask)
    np.negative(six, out=six)
    np.greater(six, a, out=mask)                    # steep toward lo
    np.multiply(lo, 2.0, out=dqf)                   # uses the updated lo
    np.multiply(c, 3.0, out=b)
    b -= dqf                                        # 3c - 2 lo
    np.copyto(hi, b, where=mask)
