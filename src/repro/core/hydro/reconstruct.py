"""Face reconstruction: piece-wise parabolic method (PPM) and minmod.

Octo-Tiger computes thermodynamic variables at cell faces with PPM
(Colella & Woodward 1984, Sec. 4.2).  The implementation reconstructs
left/right states at every interior face along one axis, vectorized over
the whole block; the minmod (MUSCL) limiter is available as the robust
fallback and as the cheaper option for tests.

Conventions: input arrays have ``ng`` ghost layers on each side along the
reconstruction axis; output face arrays cover the ``n + 1`` interior faces
(face ``f`` sits between interior cells ``f-1`` and ``f``), with ``qL``
the state just left of the face and ``qR`` just right.
"""

from __future__ import annotations

import numpy as np

__all__ = ["minmod_faces", "ppm_faces"]


def _ax(q: np.ndarray, lo: int, hi: int | None, axis: int) -> np.ndarray:
    sl = [slice(None)] * q.ndim
    sl[axis] = slice(lo, hi)
    return q[tuple(sl)]


def minmod_faces(q: np.ndarray, ng: int, axis: int
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Second-order MUSCL states (qL, qR) at the n+1 interior faces."""
    n = q.shape[axis] - 2 * ng
    qm = _ax(q, ng - 2, ng + n + 2, axis)           # cells -2 .. n+1
    d_lo = _ax(qm, 1, -1, axis) - _ax(qm, 0, -2, axis)
    d_hi = _ax(qm, 2, None, axis) - _ax(qm, 1, -1, axis)
    slope = np.where(d_lo * d_hi > 0.0,
                     np.where(np.abs(d_lo) < np.abs(d_hi), d_lo, d_hi), 0.0)
    center = _ax(qm, 1, -1, axis)                   # cells -1 .. n
    plus = center + 0.5 * slope
    minus = center - 0.5 * slope
    qL = _ax(plus, 0, -1, axis)                     # cells -1 .. n-1
    qR = _ax(minus, 1, None, axis)                  # cells  0 .. n
    return qL, qR


def ppm_faces(q: np.ndarray, ng: int, axis: int
              ) -> tuple[np.ndarray, np.ndarray]:
    """PPM states (qL, qR) at the n+1 interior faces.

    Fourth-order face interpolation followed by the Colella-Woodward
    monotonization of each cell's parabola.
    """
    if ng < 3:
        raise ValueError("PPM needs at least 3 ghost layers")
    n = q.shape[axis] - 2 * ng
    # C holds cells -3 .. n+2 (length n+6) along `axis`
    C = _ax(q, ng - 3, ng + n + 3, axis)
    # F[j] = face value left of cell j-1, for j = 0 .. n+2
    F = (7.0 / 12.0) * (_ax(C, 1, -2, axis) + _ax(C, 2, -1, axis)) \
        - (1.0 / 12.0) * (_ax(C, 0, -3, axis) + _ax(C, 3, None, axis))
    # parabola cells -1 .. n
    c = _ax(C, 2, -2, axis)
    left = _ax(C, 1, -3, axis)                      # cell i-1
    right = _ax(C, 3, -1, axis)                     # cell i+1
    lo = _ax(F, 0, -1, axis)
    hi = _ax(F, 1, None, axis)

    lo = np.clip(lo, np.minimum(left, c), np.maximum(left, c))
    hi = np.clip(hi, np.minimum(c, right), np.maximum(c, right))
    extremum = (hi - c) * (c - lo) <= 0.0
    lo = np.where(extremum, c, lo)
    hi = np.where(extremum, c, hi)
    dqf = hi - lo
    avg = 0.5 * (lo + hi)
    six = dqf * dqf / 6.0
    steep_hi = dqf * (c - avg) > six
    lo = np.where(steep_hi, 3.0 * c - 2.0 * hi, lo)
    steep_lo = -six > dqf * (c - avg)
    hi = np.where(steep_lo, 3.0 * c - 2.0 * lo, hi)

    qL = _ax(hi, 0, -1, axis)                       # cells -1 .. n-1
    qR = _ax(lo, 1, None, axis)                     # cells  0 .. n
    return qL, qR
