"""Kurganov-Tadmor central-upwind fluxes (Sec. 4.2), fused SoA form.

Octo-Tiger "uses the central advection scheme of [Kurganov & Tadmor
2000]": a Riemann-solver-free flux built from the left/right reconstructed
states and the maximal local signal speed,

    F = 1/2 [F(qL) + F(qR)] - a/2 (U_R - U_L),   a = max(|u|+c over L,R).

States are primitive: (rho, u, v, w, p, plus advected scalars); the flux
acts on the conserved vector of :mod:`repro.core.grid`.

Two implementations live here, mirroring the paper's Sec. 4.3 kernel
rework:

* :func:`kt_flux` — the production kernel: one fused pass over each face
  batch that computes primitives-to-flux, conserved states and signal
  speeds **per component**, never materializing the ``FL``/``FR``/
  ``UL``/``UR`` full-field intermediates.  It is *bitwise identical* to
  the reference (the fusion only removes temporaries; every surviving
  operation runs in the reference order) and accepts ``out=``/``ws=``
  scratch so steady-state stepping allocates nothing.
* :func:`kt_flux_reference` — the original composition of
  :func:`physical_flux` / :func:`primitive_to_conserved` /
  :func:`max_signal_speed`, kept as the property-test oracle and the
  microbenchmark baseline.

Floored cells (the headline bugfix): :func:`conserved_to_primitive` used
to divide the raw momenta by the *floored* density, so a vacuum or
fault-corrupted cell with ``rho <= rho_floor`` but finite momentum
reported ~1e12 velocities, poisoning the KT dissipation of every face it
touched and collapsing ``cfl_dt``.  Specific quantities of such cells
(velocities, specific tau/passives/spin) are now zeroed — vacuum carries
no velocity or advected content; pressure still derives from the energy
fields, which are densities and need no division.
"""

from __future__ import annotations

import numpy as np

from ..eos import IdealGas
from ..grid import EGAS, NF, RHO, SX, TAU

__all__ = ["kt_flux", "kt_flux_reference", "conserved_to_primitive",
           "primitive_to_conserved", "physical_flux", "max_signal_speed",
           "conserved_signal_speed"]


def _scratch(ws, name: str, shape: tuple[int, ...]) -> np.ndarray:
    """A workspace buffer, or a throwaway array without a workspace."""
    return ws.buf(name, shape) if ws is not None else np.empty(shape)


def conserved_to_primitive(U: np.ndarray, eos: IdealGas,
                           rho_floor: float = 1e-12,
                           out: np.ndarray | None = None,
                           ws=None) -> np.ndarray:
    """Primitive variables W from a conserved block (NF, ...).

    W layout matches U, with velocities in slots 1..3 and pressure in the
    EGAS slot; tau and the passives become specific (per-mass) fractions.
    Cells at or below the density floor get all their specific fields
    zeroed (see the module docstring) — dividing their momenta by the
    floored density would manufacture enormous velocities out of noise.

    ``out`` (an (NF, ...) array matching ``U``) or ``ws`` (a
    :class:`repro.core.workspace.Workspace`) make the conversion
    allocation-free on the hot path.
    """
    if out is not None:
        W = out
    else:
        W = _scratch(ws, "c2p:W", U.shape)
    np.maximum(U[RHO], rho_floor, out=W[RHO])
    rho = W[RHO]
    inv = 1.0 / rho
    for d in range(3):
        W[SX + d] = U[SX + d] * inv
    eint = eos.internal_energy(rho, U[SX], U[SX + 1], U[SX + 2],
                               U[EGAS], U[TAU])
    W[EGAS] = eos.pressure(rho, eint)
    for f in range(TAU, NF):
        W[f] = U[f] * inv
    floored = U[RHO] <= rho_floor
    if floored.any():
        for f in (SX, SX + 1, SX + 2, *range(TAU, NF)):
            W[f][floored] = 0.0
    return W


def primitive_to_conserved(W: np.ndarray, eos: IdealGas) -> np.ndarray:
    """Inverse of :func:`conserved_to_primitive`."""
    U = np.empty_like(W)
    rho = W[RHO]
    U[RHO] = rho
    for d in range(3):
        U[SX + d] = rho * W[SX + d]
    eint = W[EGAS] / (eos.gamma - 1.0)
    kin = 0.5 * rho * (W[SX] ** 2 + W[SX + 1] ** 2 + W[SX + 2] ** 2)
    U[EGAS] = eint + kin
    for f in range(TAU, NF):
        U[f] = rho * W[f]
    return U


def physical_flux(W: np.ndarray, eos: IdealGas, axis: int) -> np.ndarray:
    """Euler flux of the conserved vector along ``axis`` from primitives."""
    rho = W[RHO]
    un = W[SX + axis]
    p = W[EGAS]
    F = np.empty_like(W)
    F[RHO] = rho * un
    for d in range(3):
        F[SX + d] = rho * W[SX + d] * un
    F[SX + axis] = F[SX + axis] + p
    eint = p / (eos.gamma - 1.0)
    kin = 0.5 * rho * (W[SX] ** 2 + W[SX + 1] ** 2 + W[SX + 2] ** 2)
    F[EGAS] = (eint + kin + p) * un
    for f in range(TAU, NF):
        F[f] = rho * W[f] * un
    return F


def max_signal_speed(W: np.ndarray, eos: IdealGas, axis: int) -> np.ndarray:
    return np.abs(W[SX + axis]) + eos.sound_speed(W[RHO], W[EGAS])


def conserved_signal_speed(U: np.ndarray, eos: IdealGas, rho_floor: float,
                           ws=None) -> np.ndarray:
    """Per-cell max signal speed ``max_d(|u_d| + c)`` of a conserved batch.

    One fused pass reading only the six dynamic fields — no 14-field
    primitive block is materialized (the old ``cfl_dt`` converted the
    whole interior just to look at five of its fields).  Bitwise equal
    to ``max over d of |W[SX+d]| + sound_speed(W[RHO], W[EGAS])`` on the
    primitives of :func:`conserved_to_primitive`, floored-cell zeroing
    included.
    """
    shape = U.shape[1:]
    rho = np.maximum(U[RHO], rho_floor, out=_scratch(ws, "sig:rho", shape))
    inv = 1.0 / rho
    eint = eos.internal_energy(rho, U[SX], U[SX + 1], U[SX + 2],
                               U[EGAS], U[TAU])
    c = eos.sound_speed(rho, eos.pressure(rho, eint))
    floored = U[RHO] <= rho_floor
    zero_any = bool(floored.any())
    vmax = _scratch(ws, "sig:vmax", shape)
    vmax[...] = 0.0
    for d in range(3):
        u = U[SX + d] * inv
        if zero_any:
            u[floored] = 0.0
        np.maximum(vmax, np.abs(u) + c, out=vmax)
    return vmax


def kt_flux_reference(WL: np.ndarray, WR: np.ndarray, eos: IdealGas,
                      axis: int) -> np.ndarray:
    """The KT flux as the original kernel composition (test/bench oracle)."""
    FL = physical_flux(WL, eos, axis)
    FR = physical_flux(WR, eos, axis)
    a = np.maximum(max_signal_speed(WL, eos, axis),
                   max_signal_speed(WR, eos, axis))
    UL = primitive_to_conserved(WL, eos)
    UR = primitive_to_conserved(WR, eos)
    return 0.5 * (FL + FR) - 0.5 * a[None] * (UR - UL)


def kt_flux(WL: np.ndarray, WR: np.ndarray, eos: IdealGas, axis: int,
            out: np.ndarray | None = None, ws=None) -> np.ndarray:
    """Fused KT/local-Lax-Friedrichs flux from face-left/right primitives.

    Single pass per face batch: per-side signal speeds, kinetic/internal
    energies and per-field fluxes are formed component-wise and combined
    straight into ``out`` — the eight full-field ``FL``/``FR``/``UL``/
    ``UR`` temporaries of :func:`kt_flux_reference` never exist.  Every
    surviving floating-point operation matches the reference expression
    order, so the result is bitwise identical (asserted by
    ``tests/core/test_kernel_fusion.py``).
    """
    rhoL, rhoR = WL[RHO], WR[RHO]
    unL, unR = WL[SX + axis], WR[SX + axis]
    pL, pR = WL[EGAS], WR[EGAS]
    if out is None:
        out = _scratch(ws, f"kt:F{axis}", WL.shape)
    F = out
    # a = max(|u|+c over L,R); the 0.5 a prefactor is shared by all fields
    half_a = 0.5 * np.maximum(np.abs(unL) + eos.sound_speed(rhoL, pL),
                              np.abs(unR) + eos.sound_speed(rhoR, pR))
    F[RHO] = 0.5 * (rhoL * unL + rhoR * unR) - half_a * (rhoR - rhoL)
    for d in range(3):
        mL = rhoL * WL[SX + d]        # momentum density, also the U slot
        mR = rhoR * WR[SX + d]
        fL = mL * unL
        fR = mR * unR
        if d == axis:
            fL = fL + pL
            fR = fR + pR
        F[SX + d] = 0.5 * (fL + fR) - half_a * (mR - mL)
    ekL = pL / (eos.gamma - 1.0) \
        + 0.5 * rhoL * (WL[SX] ** 2 + WL[SX + 1] ** 2 + WL[SX + 2] ** 2)
    ekR = pR / (eos.gamma - 1.0) \
        + 0.5 * rhoR * (WR[SX] ** 2 + WR[SX + 1] ** 2 + WR[SX + 2] ** 2)
    F[EGAS] = 0.5 * ((ekL + pL) * unL + (ekR + pR) * unR) \
        - half_a * (ekR - ekL)
    for f in range(TAU, NF):
        mL = rhoL * WL[f]
        mR = rhoR * WR[f]
        F[f] = 0.5 * (mL * unL + mR * unR) - half_a * (mR - mL)
    return F
