"""Kurganov-Tadmor central-upwind fluxes (Sec. 4.2).

Octo-Tiger "uses the central advection scheme of [Kurganov & Tadmor
2000]": a Riemann-solver-free flux built from the left/right reconstructed
states and the maximal local signal speed,

    F = 1/2 [F(qL) + F(qR)] - a/2 (U_R - U_L),   a = max(|u|+c over L,R).

States are primitive: (rho, u, v, w, p, plus advected scalars); the flux
acts on the conserved vector of :mod:`repro.core.grid`.
"""

from __future__ import annotations

import numpy as np

from ..eos import IdealGas
from ..grid import EGAS, NF, RHO, SX, TAU

__all__ = ["kt_flux", "conserved_to_primitive", "primitive_to_conserved",
           "physical_flux", "max_signal_speed"]


def conserved_to_primitive(U: np.ndarray, eos: IdealGas,
                           rho_floor: float = 1e-12) -> np.ndarray:
    """Primitive variables W from a conserved block (NF, ...).

    W layout matches U, with velocities in slots 1..3 and pressure in the
    EGAS slot; tau and the passives become specific (per-mass) fractions.
    """
    W = np.empty_like(U)
    rho = np.maximum(U[RHO], rho_floor)
    W[RHO] = rho
    inv = 1.0 / rho
    for d in range(3):
        W[SX + d] = U[SX + d] * inv
    eint = eos.internal_energy(rho, U[SX], U[SX + 1], U[SX + 2],
                               U[EGAS], U[TAU])
    W[EGAS] = eos.pressure(rho, eint)
    for f in range(TAU, NF):
        W[f] = U[f] * inv
    return W


def primitive_to_conserved(W: np.ndarray, eos: IdealGas) -> np.ndarray:
    """Inverse of :func:`conserved_to_primitive`."""
    U = np.empty_like(W)
    rho = W[RHO]
    U[RHO] = rho
    for d in range(3):
        U[SX + d] = rho * W[SX + d]
    eint = W[EGAS] / (eos.gamma - 1.0)
    kin = 0.5 * rho * (W[SX] ** 2 + W[SX + 1] ** 2 + W[SX + 2] ** 2)
    U[EGAS] = eint + kin
    for f in range(TAU, NF):
        U[f] = rho * W[f]
    return U


def physical_flux(W: np.ndarray, eos: IdealGas, axis: int) -> np.ndarray:
    """Euler flux of the conserved vector along ``axis`` from primitives."""
    rho = W[RHO]
    un = W[SX + axis]
    p = W[EGAS]
    F = np.empty_like(W)
    F[RHO] = rho * un
    for d in range(3):
        F[SX + d] = rho * W[SX + d] * un
    F[SX + axis] = F[SX + axis] + p
    eint = p / (eos.gamma - 1.0)
    kin = 0.5 * rho * (W[SX] ** 2 + W[SX + 1] ** 2 + W[SX + 2] ** 2)
    F[EGAS] = (eint + kin + p) * un
    for f in range(TAU, NF):
        F[f] = rho * W[f] * un
    return F


def max_signal_speed(W: np.ndarray, eos: IdealGas, axis: int) -> np.ndarray:
    return np.abs(W[SX + axis]) + eos.sound_speed(W[RHO], W[EGAS])


def kt_flux(WL: np.ndarray, WR: np.ndarray, eos: IdealGas,
            axis: int) -> np.ndarray:
    """The KT/local-Lax-Friedrichs flux from face-left/right primitives."""
    FL = physical_flux(WL, eos, axis)
    FR = physical_flux(WR, eos, axis)
    a = np.maximum(max_signal_speed(WL, eos, axis),
                   max_signal_speed(WR, eos, axis))
    UL = primitive_to_conserved(WL, eos)
    UR = primitive_to_conserved(WR, eos)
    return 0.5 * (FL + FR) - 0.5 * a[None] * (UR - UL)
