"""Shape-keyed scratch buffers for the hot solver kernels.

The fused SoA kernels (hydro RHS, FMM pair batches) are memory-bound:
at production sizes the per-stage ``np.empty`` churn — primitive blocks,
face states, flux arrays, pair-kernel outputs — costs as much as the
arithmetic it feeds.  A :class:`Workspace` lets the *caller* own that
scratch and reuse it across stages, steps and solves.

Contract
--------

* Buffers are handed out **uninitialized** (``np.empty``); every kernel
  that takes a workspace must fully overwrite what it reads back.  No
  kernel result may depend on prior buffer contents — this is what keeps
  workspace-backed runs bit-identical to allocation-per-call runs.
* Buffers are keyed by ``(name, shape, dtype)`` (:meth:`buf`) or grown to
  a high-water capacity per ``name`` (:meth:`take`), so one workspace
  serves every block/batch size that flows through it.
* Storage is **thread-local**: a single workspace may be shared by a
  futurized mesh whose per-block tasks run on scheduler workers — each
  worker sees its own buffer set, so concurrent kernels never alias.
* A workspace holds *no live state* between kernel calls.  Dropping or
  recreating one is always safe; checkpoint/restore never snapshots it
  (rollback replays write fresh values into whatever buffers exist).
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """Reusable scratch arrays for allocation-free kernel hot loops."""

    __slots__ = ("_local",)

    def __init__(self) -> None:
        self._local = threading.local()

    def _bufs(self) -> dict:
        bufs = getattr(self._local, "bufs", None)
        if bufs is None:
            bufs = self._local.bufs = {}
        return bufs

    def buf(self, name: str, shape: tuple[int, ...],
            dtype=np.float64) -> np.ndarray:
        """An uninitialized scratch array of exactly ``shape``.

        The same ``(name, shape, dtype)`` always returns the same array
        (per thread), so per-stage temporaries cost one allocation for
        the lifetime of the workspace.
        """
        bufs = self._bufs()
        key = (name, shape, np.dtype(dtype).str)
        arr = bufs.get(key)
        if arr is None:
            arr = bufs[key] = np.empty(shape, dtype)
        return arr

    def take(self, name: str, n: int, trailing: tuple[int, ...] = (),
             dtype=np.float64) -> np.ndarray:
        """A view of length ``n`` into a capacity-grown buffer.

        Unlike :meth:`buf`, one buffer per ``name`` is kept and grown to
        the largest ``(n,) + trailing`` ever requested; the returned view
        covers the first ``n`` rows.  This is the right shape policy for
        pair batches whose sizes vary per plan entry.
        """
        bufs = self._bufs()
        key = (name, trailing, np.dtype(dtype).str)
        arr = bufs.get(key)
        if arr is None or arr.shape[0] < n:
            arr = bufs[key] = np.empty((n,) + trailing, dtype)
        return arr[:n]

    def nbytes(self) -> int:
        """Total bytes held by this thread's buffers (diagnostics)."""
        return sum(a.nbytes for a in self._bufs().values())
