"""Meshes: the driver layer that owns state, boundaries and gravity.

Two implementations with identical physics:

* :class:`Mesh` — one contiguous block.  This is the fast path for the
  verification problems (Sod, Sedov-Taylor, star equilibria) and small
  production runs; self-gravity comes from the FMM solver when the edge
  is ``8 * 2^L`` cells.

* :class:`DistributedMesh` — the same domain tiled into 8^3 sub-grids
  (the paper's octree leaves at a fixed level) with halo exchange through
  :class:`repro.runtime.Channel` objects and per-sub-grid tasks scheduled
  on the work-stealing runtime — the futurized execution style of
  Sec. 4.1/5.2.  Its results match :class:`Mesh` bit-for-bit given the
  same inputs (tested), demonstrating that the runtime integration "does
  not change the physics".

Boundary conditions: ``outflow`` (zero gradient), ``reflect`` (mirror,
normal momentum negated) and ``periodic``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..runtime.counters import default_registry
from .eos import IdealGas
from .grid import EGAS, LX, NF, NGHOST, RHO, SUBGRID_N, SX, TAU
from .gravity.fmm import FmmSolver
from .hydro.solver import HydroOptions, cfl_dt, compute_rhs

__all__ = ["Mesh", "DistributedMesh", "apply_boundary"]

_BCS = ("outflow", "reflect", "periodic")


def apply_boundary(U: np.ndarray, bc: str) -> None:
    """Fill the ghost shell of a block according to ``bc``."""
    if bc not in _BCS:
        raise ValueError(f"unknown boundary condition {bc!r}")
    g = NGHOST
    for axis in range(3):
        n = U.shape[1 + axis] - 2 * g

        def sl(a, b):
            s = [slice(None)] * 4
            s[1 + axis] = slice(a, b)
            return tuple(s)

        if bc == "periodic":
            U[sl(0, g)] = U[sl(n, n + g)]
            U[sl(n + g, n + 2 * g)] = U[sl(g, 2 * g)]
        elif bc == "outflow":
            U[sl(0, g)] = U[sl(g, g + 1)]
            U[sl(n + g, n + 2 * g)] = U[sl(n + g - 1, n + g)]
        else:  # reflect
            for k in range(g):
                U[sl(g - 1 - k, g - k)] = U[sl(g + k, g + k + 1)]
                U[sl(n + g + k, n + g + k + 1)] = \
                    U[sl(n + g - 1 - k, n + g - k)]
            U[(SX + axis,) + sl(0, g)[1:]] *= -1.0
            U[(SX + axis,) + sl(n + g, n + 2 * g)[1:]] *= -1.0


class Mesh:
    """A single uniform block with optional FMM self-gravity.

    Parameters
    ----------
    n:
        Cells per edge.
    domain:
        Physical edge length (cube); the lower corner sits at ``origin``.
    bc:
        Boundary condition name applied on all six faces.
    self_gravity:
        Solve gravity with the FMM each step (requires ``n = 8 * 2^L``).
    """

    def __init__(self, n: int | tuple[int, int, int], domain: float = 1.0,
                 origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
                 options: HydroOptions | None = None, bc: str = "outflow",
                 self_gravity: bool = False):
        if bc not in _BCS:
            raise ValueError(f"unknown boundary condition {bc!r}")
        self.shape = (n, n, n) if isinstance(n, int) else tuple(n)
        self.n = self.shape[0]
        self.domain = float(domain)
        self.origin = tuple(float(c) for c in origin)
        self.dx = self.domain / self.shape[0]
        self.options = options or HydroOptions(eos=IdealGas())
        self.bc = bc
        self.self_gravity = self_gravity
        if self_gravity and len(set(self.shape)) != 1:
            raise ValueError("self-gravity requires a cubic mesh")
        dims = tuple(s + 2 * NGHOST for s in self.shape)
        self.U = np.zeros((NF,) + dims)
        self.time = 0.0
        self.steps = 0
        self.phi: np.ndarray | None = None
        self._solver: FmmSolver | None = None

    # -- geometry / views --------------------------------------------------------

    @property
    def interior(self) -> np.ndarray:
        g = NGHOST
        return self.U[:, g:g + self.shape[0], g:g + self.shape[1],
                      g:g + self.shape[2]]

    def cell_centers(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        ax = [self.origin[d] + (np.arange(self.shape[d]) + 0.5) * self.dx
              for d in range(3)]
        return (ax[0][:, None, None], ax[1][None, :, None],
                ax[2][None, None, :])

    # -- state setup --------------------------------------------------------------

    def load_primitives(self, rho, vx, vy, vz, p) -> None:
        """Initialize conserved state from primitive fields (broadcastable)."""
        eos = self.options.eos
        I = self.interior
        shape = I.shape[1:]
        rho = np.broadcast_to(np.asarray(rho, float), shape)
        I[RHO] = rho
        for d, v in enumerate((vx, vy, vz)):
            I[SX + d] = rho * np.broadcast_to(np.asarray(v, float), shape)
        p = np.broadcast_to(np.asarray(p, float), shape)
        eint = p / (eos.gamma - 1.0)
        kin = 0.5 * (I[SX] ** 2 + I[SX + 1] ** 2 + I[SX + 2] ** 2) \
            / np.maximum(rho, self.options.rho_floor)
        I[EGAS] = eint + kin
        I[TAU] = eos.tau_from_eint(eint)

    # -- gravity -------------------------------------------------------------------

    def solve_gravity(self) -> np.ndarray:
        """FMM solve; returns acceleration (3, n, n, n), stores phi."""
        if self._solver is None:
            self._solver = FmmSolver.from_uniform(
                np.ascontiguousarray(self.interior[RHO]), self.dx,
                subgrid_n=SUBGRID_N)
        depth = self._solver._uniform_shape[0]
        self._solver.set_leaf_density(
            {depth: np.ascontiguousarray(self.interior[RHO])})
        result = self._solver.solve()
        phi, acc = self._solver.uniform_field(result)
        self.phi = phi
        return np.moveaxis(acc, -1, 0)

    # -- stepping ----------------------------------------------------------------------

    def fill_ghosts(self, U: np.ndarray | None = None) -> None:
        apply_boundary(self.U if U is None else U, self.bc)

    def compute_dt(self) -> float:
        self.fill_ghosts()
        return cfl_dt(self.U, self.dx, self.options)

    def step(self, dt: float | None = None) -> float:
        """One SSP-RK2 step; returns the dt used."""
        if dt is None:
            dt = self.compute_dt()
        g = NGHOST
        inner = (slice(None),) + tuple(
            slice(g, g + self.shape[d]) for d in range(3))
        gravity = self.solve_gravity() if self.self_gravity else None
        self.fill_ghosts()
        k1 = compute_rhs(self.U, self.dx, self.options, self.origin, gravity)
        U1 = self.U.copy()
        U1[inner] += dt * k1
        self._floors(U1[inner])
        apply_boundary(U1, self.bc)
        if self.self_gravity:
            depth = self._solver._uniform_shape[0]
            self._solver.set_leaf_density(
                {depth: np.ascontiguousarray(U1[inner][RHO])})
            phi1, acc1 = self._solver.uniform_field(self._solver.solve())
            gravity = np.moveaxis(acc1, -1, 0)
        k2 = compute_rhs(U1, self.dx, self.options, self.origin, gravity)
        self.U[inner] += 0.5 * dt * (k1 + k2)
        self._floors(self.interior)
        self._sync_tau()
        self.time += dt
        self.steps += 1
        default_registry().increment("/hydro/steps")
        return dt

    def _floors(self, I: np.ndarray) -> None:
        np.maximum(I[RHO], self.options.rho_floor, out=I[RHO])
        np.maximum(I[TAU], 0.0, out=I[TAU])

    def _sync_tau(self) -> None:
        I = self.interior
        eos = self.options.eos
        I[TAU] = eos.sync_tau(I[RHO], I[SX], I[SX + 1], I[SX + 2],
                              I[EGAS], I[TAU])

    # -- diagnostics ------------------------------------------------------------

    def conserved_totals(self) -> dict[str, float | np.ndarray]:
        """Mass, momentum, gas energy, total angular momentum (+spin)."""
        I = self.interior
        v = self.dx ** 3
        x, y, z = self.cell_centers()
        mom = np.array([I[SX].sum(), I[SX + 1].sum(), I[SX + 2].sum()]) * v
        lz = ((x * I[SX + 1] - y * I[SX]).sum() + I[LX + 2].sum()) * v
        lx = ((y * I[SX + 2] - z * I[SX + 1]).sum() + I[LX].sum()) * v
        ly = ((z * I[SX] - x * I[SX + 2]).sum() + I[LX + 1].sum()) * v
        out = {
            "mass": float(I[RHO].sum()) * v,
            "momentum": mom,
            "egas": float(I[EGAS].sum()) * v,
            "angular_momentum": np.array([lx, ly, lz]),
        }
        if self.phi is not None:
            out["etot"] = out["egas"] + 0.5 * float(
                (self.interior[RHO] * self.phi).sum()) * v
        return out


class DistributedMesh:
    """The same physics tiled into 8^3 sub-grids with channel halos.

    Each sub-grid is an HPX-component-like unit: per step and per stage
    it publishes its halo layers into per-neighbour channels and consumes
    its neighbours' futures, and its RHS evaluation runs as a task on a
    work-stealing scheduler when one is supplied — the paper's futurized
    execution (Sec. 4.1).  Physics is identical to :class:`Mesh`.
    """

    def __init__(self, blocks_per_edge: int, domain: float = 1.0,
                 origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
                 options: HydroOptions | None = None, bc: str = "outflow",
                 scheduler=None):
        from ..runtime.channel import Channel
        self.bpe = blocks_per_edge
        self.nsub = SUBGRID_N
        self.n = blocks_per_edge * SUBGRID_N
        self.domain = float(domain)
        self.origin = tuple(float(c) for c in origin)
        self.dx = self.domain / self.n
        self.options = options or HydroOptions(eos=IdealGas())
        self.bc = bc
        self.scheduler = scheduler
        m = self.nsub + 2 * NGHOST
        self.blocks: dict[tuple[int, int, int], np.ndarray] = {}
        for ip in np.ndindex(self.bpe, self.bpe, self.bpe):
            self.blocks[ip] = np.zeros((NF, m, m, m))
        self.channels: dict = {}
        self._Channel = Channel
        self.time = 0.0
        self.steps = 0

    # -- state interchange with a flat array ------------------------------------

    def load_interior(self, full: np.ndarray) -> None:
        """Scatter a (NF, n, n, n) interior into the sub-grid blocks."""
        g = NGHOST
        s = self.nsub
        for ip, blk in self.blocks.items():
            i, j, k = ip
            blk[:, g:g + s, g:g + s, g:g + s] = \
                full[:, i * s:(i + 1) * s, j * s:(j + 1) * s,
                     k * s:(k + 1) * s]

    def gather_interior(self) -> np.ndarray:
        g = NGHOST
        s = self.nsub
        full = np.zeros((NF, self.n, self.n, self.n))
        for ip, blk in self.blocks.items():
            i, j, k = ip
            full[:, i * s:(i + 1) * s, j * s:(j + 1) * s,
                 k * s:(k + 1) * s] = blk[:, g:g + s, g:g + s, g:g + s]
        return full

    # -- halo exchange through channels ---------------------------------------------

    def _halo_exchange(self, generation: int) -> None:
        """Publish and consume all halos for one stage via channels.

        Receives are posted first (futures), sends second, then futures
        are drained — the paper's "the receiving end may fetch futures ...
        the sending end may push data into [the channel] as it is
        generated" (Sec. 5.2).
        """
        g = NGHOST
        s = self.nsub
        offsets = [np.array(o) for o in np.ndindex(3, 3, 3)
                   if o != (1, 1, 1)]
        offsets = [o - 1 for o in offsets]
        pending = []
        for ip, blk in self.blocks.items():
            for off in offsets:
                nb = tuple(np.array(ip) + off)
                if nb in self.blocks:
                    key = (nb, tuple(-off))
                    ch = self.channels.setdefault(
                        key, self._Channel(name=str(key)))
                    fut = ch.get(generation)
                    pending.append((ip, tuple(off), fut))
        for ip, blk in self.blocks.items():
            for off in offsets:
                nb = tuple(np.array(ip) + off)
                if nb in self.blocks:
                    key = (ip, tuple(off))
                    ch = self.channels.setdefault(
                        key, self._Channel(name=str(key)))
                    ch.set(self._extract_halo(blk, off), generation)
        for ip, off, fut in pending:
            self._insert_halo(self.blocks[ip], off, fut.get())
        for ip, blk in self.blocks.items():
            self._physical_boundary(ip, blk)

    def _extract_halo(self, blk: np.ndarray, off: tuple[int, int, int]
                      ) -> np.ndarray:
        """Interior layer a neighbour at ``off`` needs (from the sender)."""
        g = NGHOST
        s = self.nsub
        sl = [slice(None)]
        for d in range(3):
            if off[d] == -1:
                sl.append(slice(g, 2 * g))
            elif off[d] == 1:
                sl.append(slice(g + s - g, g + s))
            else:
                sl.append(slice(g, g + s))
        return blk[tuple(sl)].copy()

    def _insert_halo(self, blk: np.ndarray, off: tuple[int, int, int],
                     data: np.ndarray) -> None:
        """Write a received halo from the neighbour at ``off``."""
        g = NGHOST
        s = self.nsub
        sl = [slice(None)]
        for d in range(3):
            if off[d] == 1:
                sl.append(slice(g + s, g + s + g))
            elif off[d] == -1:
                sl.append(slice(0, g))
            else:
                sl.append(slice(g, g + s))
        blk[tuple(sl)] = data

    def _physical_boundary(self, ip, blk) -> None:
        """Apply the domain BC on faces without neighbours."""
        g = NGHOST
        s = self.nsub
        for axis in range(3):
            for side in (-1, 1):
                nb = list(ip)
                nb[axis] += side
                if 0 <= nb[axis] < self.bpe:
                    continue
                # fill by copying the edge interior layer (outflow) or
                # mirroring (reflect); periodic wraps to the far block
                if self.bc == "periodic":
                    src_ip = list(ip)
                    src_ip[axis] = (ip[axis] + side) % self.bpe
                    src = self.blocks[tuple(src_ip)]
                    off = [0, 0, 0]
                    off[axis] = side
                    self._insert_halo(blk, tuple(off),
                                      self._extract_halo(src, tuple(off)))
                    continue
                sl = [slice(None)] * 4
                if side == -1:
                    for k in range(g):
                        dst = sl.copy()
                        dst[1 + axis] = slice(g - 1 - k, g - k)
                        srcs = sl.copy()
                        srci = g if self.bc == "outflow" else g + k
                        srcs[1 + axis] = slice(srci, srci + 1)
                        blk[tuple(dst)] = blk[tuple(srcs)]
                    if self.bc == "reflect":
                        m = sl.copy()
                        m[0] = SX + axis
                        m[1 + axis] = slice(0, g)
                        blk[tuple(m)] *= -1.0
                else:
                    for k in range(g):
                        dst = sl.copy()
                        dst[1 + axis] = slice(g + s + k, g + s + k + 1)
                        srcs = sl.copy()
                        srci = g + s - 1 if self.bc == "outflow" \
                            else g + s - 1 - k
                        srcs[1 + axis] = slice(srci, srci + 1)
                        blk[tuple(dst)] = blk[tuple(srcs)]
                    if self.bc == "reflect":
                        m = sl.copy()
                        m[0] = SX + axis
                        m[1 + axis] = slice(g + s, g + s + g)
                        blk[tuple(m)] *= -1.0

    # -- stepping ------------------------------------------------------------------

    def _block_origin(self, ip) -> tuple[float, float, float]:
        s = self.nsub
        return tuple(self.origin[d] + ip[d] * s * self.dx for d in range(3))

    def step(self, dt: float) -> None:
        """One SSP-RK2 step across all sub-grids (futurized when a
        scheduler is present)."""
        g = NGHOST
        s = self.nsub
        inner = (slice(None),) + (slice(g, g + s),) * 3
        gen = 2 * self.steps
        self._halo_exchange(gen)
        k1 = self._rhs_all(self.blocks)
        stage = {ip: blk.copy() for ip, blk in self.blocks.items()}
        for ip in stage:
            stage[ip][inner] += dt * k1[ip]
            np.maximum(stage[ip][RHO], self.options.rho_floor,
                       out=stage[ip][RHO])
            np.maximum(stage[ip][TAU], 0.0, out=stage[ip][TAU])
        saved, self.blocks = self.blocks, stage
        self._halo_exchange(gen + 1)
        k2 = self._rhs_all(self.blocks)
        self.blocks = saved
        for ip, blk in self.blocks.items():
            blk[inner] += 0.5 * dt * (k1[ip] + k2[ip])
            np.maximum(blk[RHO], self.options.rho_floor, out=blk[RHO])
            np.maximum(blk[TAU], 0.0, out=blk[TAU])
            I = blk[inner]
            eos = self.options.eos
            I[TAU] = eos.sync_tau(I[RHO], I[SX], I[SX + 1], I[SX + 2],
                                  I[EGAS], I[TAU])
        self.time += dt
        self.steps += 1

    def _rhs_all(self, blocks) -> dict:
        out = {}
        if self.scheduler is None:
            for ip, blk in blocks.items():
                out[ip] = compute_rhs(blk, self.dx, self.options,
                                      self._block_origin(ip))
            return out
        futures = {
            ip: self.scheduler.submit(
                compute_rhs, blk, self.dx, self.options,
                self._block_origin(ip))
            for ip, blk in blocks.items()
        }
        return {ip: fut.get() for ip, fut in futures.items()}
