"""Meshes: the driver layer that owns state, boundaries and gravity.

Two implementations with identical physics:

* :class:`Mesh` — one contiguous block.  This is the fast path for the
  verification problems (Sod, Sedov-Taylor, star equilibria) and small
  production runs; self-gravity comes from the FMM solver when the edge
  is ``8 * 2^L`` cells.

* :class:`BlockMesh` — the same domain tiled into 8^3 sub-grids (the
  paper's octree leaves at a fixed level, one multi-sub-grid node) with
  halo exchange through :class:`repro.runtime.Channel` objects,
  per-sub-grid hydro tasks and futurized FMM gravity dispatched through
  a :class:`repro.core.exec.ExecutionEngine` (work-stealing scheduler +
  GPU streams with CPU overflow) — the futurized execution style of
  Sec. 4.1/5.1/5.2.  The engine coalesces both the per-block RHS tasks
  and the FMM interaction batches into aggregated launches
  (:mod:`repro.runtime.aggregate`), so a step issues a handful of
  slot-buffer launches instead of hundreds of per-kernel ones.  Its
  results match :class:`Mesh` bit-for-bit given the same inputs
  (tested), demonstrating that the runtime integration "does not change
  the physics".  ``DistributedMesh`` remains as an alias of its former
  name.

Boundary conditions: ``outflow`` (zero gradient), ``reflect`` (mirror,
normal momentum negated) and ``periodic``.

After a step, ``mesh.phi`` always holds the potential of the *current*
(post-step) density: the closing gravity solve of step N doubles as the
first-stage solve of step N+1 (the density is unchanged in between, so
the solve is reused, keeping the cost at two solves per step).
"""

from __future__ import annotations

import itertools
from typing import Callable

import numpy as np

from ..runtime.counters import default_registry
from ..sanitize import racecheck as _racecheck
from ..sanitize import state as _sanitize_state
from .eos import IdealGas
from .grid import EGAS, LX, NF, NGHOST, RHO, SUBGRID_N, SX, TAU
from .gravity.fmm import FmmSolver
from .hydro.solver import HydroOptions, apply_floors, cfl_dt, compute_rhs
from .workspace import Workspace

__all__ = ["Mesh", "BlockMesh", "DistributedMesh", "apply_boundary"]


def _conserved_totals(I: np.ndarray, dx: float,
                      origin: tuple[float, float, float],
                      phi: np.ndarray | None) -> dict:
    """Mass, momentum, gas energy, angular momentum of an interior array."""
    v = dx ** 3
    ax = [origin[d] + (np.arange(I.shape[1 + d]) + 0.5) * dx
          for d in range(3)]
    x, y, z = (ax[0][:, None, None], ax[1][None, :, None],
               ax[2][None, None, :])
    mom = np.array([I[SX].sum(), I[SX + 1].sum(), I[SX + 2].sum()]) * v
    lz = ((x * I[SX + 1] - y * I[SX]).sum() + I[LX + 2].sum()) * v
    lx = ((y * I[SX + 2] - z * I[SX + 1]).sum() + I[LX].sum()) * v
    ly = ((z * I[SX] - x * I[SX + 2]).sum() + I[LX + 1].sum()) * v
    out = {
        "mass": float(I[RHO].sum()) * v,
        "momentum": mom,
        "egas": float(I[EGAS].sum()) * v,
        "angular_momentum": np.array([lx, ly, lz]),
    }
    if phi is not None:
        out["etot"] = out["egas"] + 0.5 * float(
            (I[RHO] * phi).sum()) * v
    return out


def _uniform_acc(solver: FmmSolver, rho: np.ndarray, engine
                 ) -> tuple[np.ndarray, np.ndarray]:
    """One gravity solve on a uniform density grid: (phi, acc (3,n,n,n))."""
    depth = solver._uniform_shape[0]
    solver.set_leaf_density({depth: rho})
    phi, acc = solver.uniform_field(solver.solve(executor=engine))
    return phi, np.moveaxis(acc, -1, 0)

_BCS = ("outflow", "reflect", "periodic")


def apply_boundary(U: np.ndarray, bc: str) -> None:
    """Fill the ghost shell of a block according to ``bc``."""
    if bc not in _BCS:
        raise ValueError(f"unknown boundary condition {bc!r}")
    g = NGHOST
    for axis in range(3):
        n = U.shape[1 + axis] - 2 * g

        def sl(a, b):
            s = [slice(None)] * 4
            s[1 + axis] = slice(a, b)
            return tuple(s)

        if bc == "periodic":
            U[sl(0, g)] = U[sl(n, n + g)]
            U[sl(n + g, n + 2 * g)] = U[sl(g, 2 * g)]
        elif bc == "outflow":
            U[sl(0, g)] = U[sl(g, g + 1)]
            U[sl(n + g, n + 2 * g)] = U[sl(n + g - 1, n + g)]
        else:  # reflect
            for k in range(g):
                U[sl(g - 1 - k, g - k)] = U[sl(g + k, g + k + 1)]
                U[sl(n + g + k, n + g + k + 1)] = \
                    U[sl(n + g - 1 - k, n + g - k)]
            U[(SX + axis,) + sl(0, g)[1:]] *= -1.0
            U[(SX + axis,) + sl(n + g, n + 2 * g)[1:]] *= -1.0


class Mesh:
    """A single uniform block with optional FMM self-gravity.

    Parameters
    ----------
    n:
        Cells per edge.
    domain:
        Physical edge length (cube); the lower corner sits at ``origin``.
    bc:
        Boundary condition name applied on all six faces.
    self_gravity:
        Solve gravity with the FMM each step (requires ``n = 8 * 2^L``).
    engine:
        Optional :class:`repro.core.exec.ExecutionEngine`; gravity
        solves then dispatch their interaction batches through it
        (futurized, bit-identical to serial).
    """

    def __init__(self, n: int | tuple[int, int, int], domain: float = 1.0,
                 origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
                 options: HydroOptions | None = None, bc: str = "outflow",
                 self_gravity: bool = False, engine=None):
        if bc not in _BCS:
            raise ValueError(f"unknown boundary condition {bc!r}")
        self.shape = (n, n, n) if isinstance(n, int) else tuple(n)
        self.n = self.shape[0]
        self.domain = float(domain)
        self.origin = tuple(float(c) for c in origin)
        self.dx = self.domain / self.shape[0]
        self.options = options or HydroOptions(eos=IdealGas())
        self.bc = bc
        self.self_gravity = self_gravity
        self.engine = engine
        if self_gravity and len(set(self.shape)) != 1:
            raise ValueError("self-gravity requires a cubic mesh")
        dims = tuple(s + 2 * NGHOST for s in self.shape)
        self.U = np.zeros((NF,) + dims)
        self.time = 0.0
        self.steps = 0
        self.phi: np.ndarray | None = None
        self._solver: FmmSolver | None = None
        # reusable contiguous-density staging buffer plus the end-of-step
        # gravity cache (acc + the density it was solved for): step N's
        # closing solve is step N+1's first-stage solve
        self._rho_buf: np.ndarray | None = None
        self._grav_rho: np.ndarray | None = None
        self._grav_acc: np.ndarray | None = None
        # kernel scratch: primitive block, face states, fluxes, stage
        # RHS/predictor buffers all live here and are reused every step
        self._ws = Workspace()

    # -- geometry / views --------------------------------------------------------

    @property
    def interior(self) -> np.ndarray:
        g = NGHOST
        return self.U[:, g:g + self.shape[0], g:g + self.shape[1],
                      g:g + self.shape[2]]

    def cell_centers(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        ax = [self.origin[d] + (np.arange(self.shape[d]) + 0.5) * self.dx
              for d in range(3)]
        return (ax[0][:, None, None], ax[1][None, :, None],
                ax[2][None, None, :])

    # -- state setup --------------------------------------------------------------

    def load_primitives(self, rho, vx, vy, vz, p) -> None:
        """Initialize conserved state from primitive fields (broadcastable)."""
        eos = self.options.eos
        I = self.interior
        shape = I.shape[1:]
        rho = np.broadcast_to(np.asarray(rho, float), shape)
        I[RHO] = rho
        for d, v in enumerate((vx, vy, vz)):
            I[SX + d] = rho * np.broadcast_to(np.asarray(v, float), shape)
        p = np.broadcast_to(np.asarray(p, float), shape)
        eint = p / (eos.gamma - 1.0)
        kin = 0.5 * (I[SX] ** 2 + I[SX + 1] ** 2 + I[SX + 2] ** 2) \
            / np.maximum(rho, self.options.rho_floor)
        I[EGAS] = eint + kin
        I[TAU] = eos.tau_from_eint(eint)

    # -- gravity -------------------------------------------------------------------

    def _rho_contig(self, field: np.ndarray) -> np.ndarray:
        """Copy a strided interior field into the reusable staging buffer
        (the solver wants a contiguous cubic grid; reallocating one per
        stage was pure churn)."""
        if self._rho_buf is None:
            self._rho_buf = np.empty(self.shape)
        np.copyto(self._rho_buf, field)
        return self._rho_buf

    def solve_gravity(self) -> np.ndarray:
        """FMM solve; returns acceleration (3, n, n, n), stores phi."""
        rho = self._rho_contig(self.interior[RHO])
        if self._solver is None:
            self._solver = FmmSolver.from_uniform(rho, self.dx,
                                                  subgrid_n=SUBGRID_N)
        phi, acc = _uniform_acc(self._solver, rho, self.engine)
        self.phi = phi
        return acc

    def _gravity_for_state(self) -> np.ndarray:
        """Acceleration for the current density, reusing the end-of-step
        solve when the density has not changed since (bit-identical to a
        fresh solve: same solver, same recorded pair script, same input)."""
        if self._grav_rho is not None and np.array_equal(
                self._grav_rho, self.interior[RHO]):
            return self._grav_acc
        return self.solve_gravity()

    def _close_step_gravity(self) -> None:
        """Fresh post-step solve: ``phi`` matches the final density, and
        the acceleration is cached for the next step's first stage."""
        self._grav_acc = self.solve_gravity()
        # the staging buffer now holds the post-step density; swap it into
        # the cache slot instead of copying (double-buffering)
        self._grav_rho, self._rho_buf = self._rho_buf, self._grav_rho

    # -- stepping ----------------------------------------------------------------------

    def fill_ghosts(self, U: np.ndarray | None = None) -> None:
        apply_boundary(self.U if U is None else U, self.bc)

    def compute_dt(self) -> float:
        self.fill_ghosts()
        return cfl_dt(self.U, self.dx, self.options, ws=self._ws)

    def step(self, dt: float | None = None) -> float:
        """One SSP-RK2 step; returns the dt used."""
        if dt is None:
            dt = self.compute_dt()
        g = NGHOST
        inner = (slice(None),) + tuple(
            slice(g, g + self.shape[d]) for d in range(3))
        gravity = self._gravity_for_state() if self.self_gravity else None
        self.fill_ghosts()
        ws = self._ws
        k1 = compute_rhs(self.U, self.dx, self.options, self.origin, gravity,
                         out=ws.buf("step:k1", (NF,) + self.shape), ws=ws)
        U1 = ws.buf("step:U1", self.U.shape)
        np.copyto(U1, self.U)
        U1[inner] += dt * k1
        self._floors(U1[inner])
        apply_boundary(U1, self.bc)
        if self.self_gravity:
            _, gravity = _uniform_acc(
                self._solver, self._rho_contig(U1[inner][RHO]), self.engine)
        k2 = compute_rhs(U1, self.dx, self.options, self.origin, gravity,
                         out=ws.buf("step:k2", (NF,) + self.shape), ws=ws)
        self.U[inner] += 0.5 * dt * (k1 + k2)
        self._floors(self.interior)
        self._sync_tau()
        if self.self_gravity:
            self._close_step_gravity()
        self.time += dt
        self.steps += 1
        default_registry().increment("/hydro/steps")
        return dt

    def _floors(self, I: np.ndarray) -> None:
        apply_floors(I, self.options)

    def _sync_tau(self) -> None:
        I = self.interior
        eos = self.options.eos
        I[TAU] = eos.sync_tau(I[RHO], I[SX], I[SX + 1], I[SX + 2],
                              I[EGAS], I[TAU])

    # -- diagnostics ------------------------------------------------------------

    def conserved_totals(self) -> dict[str, float | np.ndarray]:
        """Mass, momentum, gas energy, total angular momentum (+spin)."""
        return _conserved_totals(self.interior, self.dx, self.origin,
                                 self.phi)


class BlockMesh:
    """The same physics tiled into 8^3 sub-grids with channel halos.

    Each sub-grid is an HPX-component-like unit: per step and per stage
    it publishes its halo layers into per-neighbour channels and consumes
    its neighbours' futures, and its RHS evaluation runs as a task on a
    work-stealing scheduler when one is supplied — the paper's futurized
    execution (Sec. 4.1).  Physics is identical to :class:`Mesh`.

    With ``self_gravity=True`` (requires ``blocks_per_edge`` a power of
    two) one FMM solver is shared across all blocks: it is built once
    from the block geometry, its interaction lists are recorded on the
    first solve, and every stage re-sets only the leaf densities from the
    gathered block interiors.  Supplying a ``scheduler`` and/or
    ``device`` (wrapped into an :class:`repro.core.exec.ExecutionEngine`,
    or pass ``engine`` directly) futurizes both the per-block hydro RHS
    tasks and the FMM interaction batches — with a device, gravity
    kernels go to GPU streams and overflow to CPU workers under the
    paper's launch policy.  Serial and futurized runs are bit-identical.
    """

    def __init__(self, blocks_per_edge: int, domain: float = 1.0,
                 origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
                 options: HydroOptions | None = None, bc: str = "outflow",
                 scheduler=None, device=None, engine=None,
                 self_gravity: bool = False):
        from ..runtime.channel import Channel
        self.bpe = blocks_per_edge
        self.nsub = SUBGRID_N
        self.n = blocks_per_edge * SUBGRID_N
        self.domain = float(domain)
        self.origin = tuple(float(c) for c in origin)
        self.dx = self.domain / self.n
        self.options = options or HydroOptions(eos=IdealGas())
        self.bc = bc
        if engine is None and (scheduler is not None or device is not None):
            from .exec import ExecutionEngine
            engine = ExecutionEngine(scheduler=scheduler, device=device)
        self.engine = engine
        self.scheduler = scheduler if scheduler is not None else (
            engine.scheduler if engine is not None else None)
        self.self_gravity = self_gravity
        if self_gravity and (blocks_per_edge & (blocks_per_edge - 1)):
            raise ValueError(
                "self-gravity needs blocks_per_edge = 2^k (the FMM level "
                "hierarchy must reach a single root sub-grid)")
        m = self.nsub + 2 * NGHOST
        self.blocks: dict[tuple[int, int, int], np.ndarray] = {}
        for ip in np.ndindex(self.bpe, self.bpe, self.bpe):
            self.blocks[ip] = np.zeros((NF, m, m, m))
        self.channels: dict = {}
        self._Channel = Channel
        self.time = 0.0
        self.steps = 0
        self.phi: np.ndarray | None = None
        self._solver: FmmSolver | None = None
        self._rho_buf: np.ndarray | None = None
        self._grav_rho: np.ndarray | None = None
        self._grav_acc: np.ndarray | None = None
        # per-step stage copies of every block, reused across steps
        self._stage: dict[tuple[int, int, int], np.ndarray] | None = None
        # kernel scratch (thread-local inside, so futurized per-block RHS
        # tasks on scheduler workers never alias) and the per-block stage
        # RHS output buffers, reused across steps
        self._ws = Workspace()
        self._rhs_out: dict[str, dict] = {}
        # halo topology is fixed: precompute the 26-offset list, the
        # neighbour pairs and their channels once instead of per stage
        self._offsets = [o for o in itertools.product((-1, 0, 1), repeat=3)
                         if o != (0, 0, 0)]
        self._halo_plan = self._build_halo_plan()

    # -- state interchange with a flat array ------------------------------------

    def load_interior(self, full: np.ndarray) -> None:
        """Scatter a (NF, n, n, n) interior into the sub-grid blocks."""
        g = NGHOST
        s = self.nsub
        for ip, blk in self.blocks.items():
            i, j, k = ip
            blk[:, g:g + s, g:g + s, g:g + s] = \
                full[:, i * s:(i + 1) * s, j * s:(j + 1) * s,
                     k * s:(k + 1) * s]

    def gather_interior(self) -> np.ndarray:
        g = NGHOST
        s = self.nsub
        full = np.zeros((NF, self.n, self.n, self.n))
        for ip, blk in self.blocks.items():
            i, j, k = ip
            full[:, i * s:(i + 1) * s, j * s:(j + 1) * s,
                 k * s:(k + 1) * s] = blk[:, g:g + s, g:g + s, g:g + s]
        return full

    # -- halo exchange through channels ---------------------------------------------

    def _channel(self, key):
        return self.channels.setdefault(key, self._Channel(name=str(key)))

    def _build_halo_plan(self):
        """Freeze the per-stage exchange: (ip, offset, channel) triples
        for every interior neighbour pair, receives and sends, with the
        channels created up front (they used to be key-tupled and looked
        up 26 times per block per stage)."""
        offsets = self._offsets
        recv, send = [], []
        for ip in self.blocks:
            for off in offsets:
                nb = (ip[0] + off[0], ip[1] + off[1], ip[2] + off[2])
                if nb in self.blocks:
                    mirror = (-off[0], -off[1], -off[2])
                    recv.append((ip, off, self._channel((nb, mirror))))
                    send.append((ip, off, self._channel((ip, off))))
        return recv, send

    def _halo_exchange(self, generation: int) -> None:
        """Publish and consume all halos for one stage via channels.

        Receives are posted first (futures), sends second, then futures
        are drained — the paper's "the receiving end may fetch futures ...
        the sending end may push data into [the channel] as it is
        generated" (Sec. 5.2).
        """
        recv, send = self._halo_plan
        pending = [(ip, off, ch.get(generation)) for ip, off, ch in recv]
        for ip, off, ch in send:
            ch.set(self._extract_halo(self.blocks[ip], off), generation)
        for ip, off, fut in pending:
            self._insert_halo(self.blocks[ip], off, fut.get())
        for ip, blk in self.blocks.items():
            self._physical_boundary(ip, blk)

    def _extract_halo(self, blk: np.ndarray, off: tuple[int, int, int]
                      ) -> np.ndarray:
        """Interior layer a neighbour at ``off`` needs (from the sender)."""
        g = NGHOST
        s = self.nsub
        if _sanitize_state.ACTIVE:
            _racecheck.access(blk, "r", owner="halo/src-block")
        sl = [slice(None)]
        for d in range(3):
            if off[d] == -1:
                sl.append(slice(g, 2 * g))
            elif off[d] == 1:
                sl.append(slice(g + s - g, g + s))
            else:
                sl.append(slice(g, g + s))
        return blk[tuple(sl)].copy()

    def _insert_halo(self, blk: np.ndarray, off: tuple[int, int, int],
                     data: np.ndarray) -> None:
        """Write a received halo from the neighbour at ``off``."""
        g = NGHOST
        s = self.nsub
        if _sanitize_state.ACTIVE:
            _racecheck.access(data, "r", owner="halo/payload")
            _racecheck.access(blk, "w", owner="halo/dst-block")
        sl = [slice(None)]
        for d in range(3):
            if off[d] == 1:
                sl.append(slice(g + s, g + s + g))
            elif off[d] == -1:
                sl.append(slice(0, g))
            else:
                sl.append(slice(g, g + s))
        blk[tuple(sl)] = data

    def _periodic_wraps(self, ip) -> list[tuple[tuple[int, int, int],
                                                tuple[int, int, int]]]:
        """``(offset, source block)`` pairs for ghost regions of ``ip``
        that cross the periodic seam — every one of the 26 offsets whose
        neighbour falls outside the block lattice, wrapped coordinate-wise.
        Face, edge *and* corner regions are all covered; the data each one
        needs is the wrapped block's interior layer facing back at us
        (the mirror of the offset), exactly as a channel neighbour would
        have published it."""
        wraps = []
        for off in self._offsets:
            nb = (ip[0] + off[0], ip[1] + off[1], ip[2] + off[2])
            if nb in self.blocks:
                continue
            src_ip = tuple((ip[d] + off[d]) % self.bpe for d in range(3))
            wraps.append((off, src_ip))
        return wraps

    def _physical_boundary(self, ip, blk) -> None:
        """Apply the domain BC on faces without neighbours."""
        g = NGHOST
        s = self.nsub
        if self.bc == "periodic":
            # wrap ALL out-of-lattice offsets (faces, edges, corners):
            # the old per-axis loop wrapped only the six face offsets and
            # copied the wrong side of the source block — the axis-sweep
            # reconstruction never read the stale edge/corner ghosts, but
            # per-neighbour distributed halos do
            for off, src_ip in self._periodic_wraps(ip):
                mirror = (-off[0], -off[1], -off[2])
                self._insert_halo(blk, off,
                                  self._extract_halo(self.blocks[src_ip],
                                                     mirror))
            return
        for axis in range(3):
            for side in (-1, 1):
                nb = list(ip)
                nb[axis] += side
                if 0 <= nb[axis] < self.bpe:
                    continue
                # fill by copying the edge interior layer (outflow) or
                # mirroring (reflect)
                sl = [slice(None)] * 4
                if side == -1:
                    for k in range(g):
                        dst = sl.copy()
                        dst[1 + axis] = slice(g - 1 - k, g - k)
                        srcs = sl.copy()
                        srci = g if self.bc == "outflow" else g + k
                        srcs[1 + axis] = slice(srci, srci + 1)
                        blk[tuple(dst)] = blk[tuple(srcs)]
                    if self.bc == "reflect":
                        m = sl.copy()
                        m[0] = SX + axis
                        m[1 + axis] = slice(0, g)
                        blk[tuple(m)] *= -1.0
                else:
                    for k in range(g):
                        dst = sl.copy()
                        dst[1 + axis] = slice(g + s + k, g + s + k + 1)
                        srcs = sl.copy()
                        srci = g + s - 1 if self.bc == "outflow" \
                            else g + s - 1 - k
                        srcs[1 + axis] = slice(srci, srci + 1)
                        blk[tuple(dst)] = blk[tuple(srcs)]
                    if self.bc == "reflect":
                        m = sl.copy()
                        m[0] = SX + axis
                        m[1 + axis] = slice(g + s, g + s + g)
                        blk[tuple(m)] *= -1.0

    # -- stepping ------------------------------------------------------------------

    def _block_origin(self, ip) -> tuple[float, float, float]:
        s = self.nsub
        return tuple(self.origin[d] + ip[d] * s * self.dx for d in range(3))

    # -- gravity -------------------------------------------------------------------

    def _gather_rho(self) -> np.ndarray:
        """Gather block-interior densities into the reusable full grid."""
        if self._rho_buf is None:
            self._rho_buf = np.empty((self.n,) * 3)
        g = NGHOST
        s = self.nsub
        for ip, blk in self.blocks.items():
            i, j, k = ip
            self._rho_buf[i * s:(i + 1) * s, j * s:(j + 1) * s,
                          k * s:(k + 1) * s] = blk[RHO, g:g + s, g:g + s,
                                                   g:g + s]
        return self._rho_buf

    def solve_gravity(self, rho: np.ndarray | None = None) -> np.ndarray:
        """Shared-solver FMM solve over all blocks; returns (3, n, n, n).

        The solver is built once from the block geometry; subsequent
        solves only re-set leaf densities and replay the cached
        interaction lists (futurized through ``self.engine`` when set).
        """
        if not self.self_gravity:
            raise RuntimeError("BlockMesh built without self_gravity")
        if rho is None:
            rho = self._gather_rho()
        if self._solver is None:
            self._solver = FmmSolver.from_uniform(rho, self.dx,
                                                  subgrid_n=SUBGRID_N)
        phi, acc = _uniform_acc(self._solver, rho, self.engine)
        self.phi = phi
        return acc

    def _gravity_for_state(self) -> np.ndarray:
        """Current-density acceleration, reusing the end-of-step solve
        when nothing changed (see :meth:`Mesh._gravity_for_state`)."""
        rho = self._gather_rho()
        if self._grav_rho is not None and np.array_equal(
                self._grav_rho, rho):
            return self._grav_acc
        return self.solve_gravity(rho)

    def _close_step_gravity(self) -> None:
        self._grav_acc = self.solve_gravity()
        self._grav_rho, self._rho_buf = self._rho_buf, self._grav_rho

    def _block_gravity(self, gravity: np.ndarray | None, ip
                       ) -> np.ndarray | None:
        if gravity is None:
            return None
        i, j, k = ip
        s = self.nsub
        return gravity[:, i * s:(i + 1) * s, j * s:(j + 1) * s,
                       k * s:(k + 1) * s]

    # -- stepping ------------------------------------------------------------------

    def compute_dt(self) -> float:
        """CFL reduction over all blocks (min of per-block ``cfl_dt``)."""
        return min(cfl_dt(blk, self.dx, self.options, ws=self._ws)
                   for blk in self.blocks.values())

    def step(self, dt: float | None = None) -> float:
        """One SSP-RK2 step across all sub-grids (futurized when a
        scheduler/engine is present); returns the dt used."""
        if dt is None:
            dt = self.compute_dt()
        g = NGHOST
        s = self.nsub
        inner = (slice(None),) + (slice(g, g + s),) * 3
        gen = 2 * self.steps
        gravity = self._gravity_for_state() if self.self_gravity else None
        self._halo_exchange(gen)
        k1 = self._rhs_all(self.blocks, gravity, self._stage_out("k1"))
        if self._stage is None:
            self._stage = {ip: np.empty_like(blk)
                           for ip, blk in self.blocks.items()}
        stage = self._stage
        for ip, blk in self.blocks.items():
            np.copyto(stage[ip], blk)
            stage[ip][inner] += dt * k1[ip]
            apply_floors(stage[ip], self.options)
        saved, self.blocks = self.blocks, stage
        self._halo_exchange(gen + 1)
        if self.self_gravity:
            _, gravity = _uniform_acc(self._solver, self._gather_rho(),
                                      self.engine)
        k2 = self._rhs_all(self.blocks, gravity, self._stage_out("k2"))
        self.blocks = saved
        for ip, blk in self.blocks.items():
            blk[inner] += 0.5 * dt * (k1[ip] + k2[ip])
            apply_floors(blk, self.options)
            I = blk[inner]
            eos = self.options.eos
            I[TAU] = eos.sync_tau(I[RHO], I[SX], I[SX + 1], I[SX + 2],
                                  I[EGAS], I[TAU])
        if self.self_gravity:
            self._close_step_gravity()
        self.time += dt
        self.steps += 1
        default_registry().increment("/hydro/steps")
        return dt

    def _stage_out(self, stage: str) -> dict:
        """Per-block RHS output buffers for one RK stage (k1 and k2 must
        coexist, so each stage owns a dict), allocated once per mesh."""
        outs = self._rhs_out.get(stage)
        if outs is None:
            s = self.nsub
            outs = self._rhs_out[stage] = {
                ip: np.empty((NF, s, s, s)) for ip in self.blocks}
        return outs

    def _rhs_all(self, blocks, gravity: np.ndarray | None = None,
                 outs: dict | None = None) -> dict:
        # per-block RHS tasks stay on CPU workers (use_device=False): the
        # engine still chunks them into aggregation-region tasks, so the
        # scheduler sees slot-buffer granularity, not per-block tasks
        items = list(blocks.items())
        if outs is None:
            outs = {ip: None for ip, _ in items}
        if self.engine is None:
            return {ip: compute_rhs(blk, self.dx, self.options,
                                    self._block_origin(ip),
                                    self._block_gravity(gravity, ip),
                                    False, outs[ip], self._ws)
                    for ip, blk in items}
        futures = self.engine.map(
            compute_rhs,
            [(blk, self.dx, self.options, self._block_origin(ip),
              self._block_gravity(gravity, ip), False, outs[ip], self._ws)
             for ip, blk in items],
            use_device=False)
        return {ip: fut.get() for (ip, _), fut in zip(items, futures)}

    # -- rollback ----------------------------------------------------------------

    def on_restore(self) -> None:
        """Called by :class:`repro.resilience.checkpoint.CheckpointManager`
        after a rollback: halo channel generations are derived from the
        step counter, so the replayed steps would collide with consumed
        generations unless every channel forgets its history.  The gravity
        cache is also dropped — it holds post-fault state."""
        for ch in self.channels.values():
            ch.reset()
        self._grav_rho = None
        self._grav_acc = None

    # -- diagnostics ------------------------------------------------------------

    def conserved_totals(self) -> dict[str, float | np.ndarray]:
        """Mass, momentum, gas energy, total angular momentum (+spin)."""
        return _conserved_totals(self.gather_interior(), self.dx,
                                 self.origin, self.phi)


#: former name of :class:`BlockMesh`, kept as an alias
DistributedMesh = BlockMesh
