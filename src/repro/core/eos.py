"""Ideal-gas equation of state with the dual-energy formalism.

Octo-Tiger evolves both the gas total energy E and an entropy tracer tau
(Sec. 4.2, following Bryan et al. 2014): "Numerical precision of internal
energy densities can suffer greatly in high mach flows, where the kinetic
energy dwarfs the gas internal energy. ... We evolve both the gas total
energy as well as the entropy.  The internal energy is then computed from
one or the other depending on the mach number (entropy for high mach flows
and total gas energy for low mach ones)."

The tracer is tau = (rho * e_int)^(1/gamma), which is advected passively
and satisfies d(tau)/dt = 0 along streamlines for smooth adiabatic flow;
e_int recovers as tau**gamma / rho (specific) or tau**gamma (density).
"""

from __future__ import annotations

import numpy as np

__all__ = ["IdealGas", "DEFAULT_GAMMA", "DEFAULT_RHO_FLOOR",
           "DUAL_ENERGY_ETA1", "DUAL_ENERGY_ETA2"]

#: monatomic / fully convective stellar matter
DEFAULT_GAMMA = 5.0 / 3.0
#: use tau when (E - K)/E falls below this (high-Mach switch)
DUAL_ENERGY_ETA1 = 1e-3
#: re-sync tau from E when (E - K)/E exceeds this (trustworthy regime)
DUAL_ENERGY_ETA2 = 1e-1
#: default vacuum density floor, shared with the hydro solver options
DEFAULT_RHO_FLOOR = 1e-12

_FLOOR = 1e-300


class IdealGas:
    """p = (gamma - 1) rho e ideal gas with dual-energy bookkeeping.

    ``rho_floor`` is the density below which a cell counts as vacuum.
    It used to be an independent ``1e-300`` clamp inside
    :meth:`sound_speed` / :meth:`kinetic`, which let a fault-corrupted
    cell with ``rho ~ 1e-200`` and finite momentum report ~1e100
    kinetic energies and signal speeds; it is now the *same* floor the
    hydro solver applies to the state
    (:class:`repro.core.hydro.solver.HydroOptions` syncs it), so every
    layer agrees on what vacuum means.
    """

    def __init__(self, gamma: float = DEFAULT_GAMMA,
                 eta1: float = DUAL_ENERGY_ETA1,
                 eta2: float = DUAL_ENERGY_ETA2,
                 rho_floor: float = DEFAULT_RHO_FLOOR):
        if gamma <= 1.0:
            raise ValueError("gamma must exceed 1")
        if rho_floor <= 0.0:
            raise ValueError("rho_floor must be positive")
        self.gamma = float(gamma)
        self.eta1 = float(eta1)
        self.eta2 = float(eta2)
        self.rho_floor = float(rho_floor)

    # -- basic relations ---------------------------------------------------

    def pressure(self, rho: np.ndarray, eint: np.ndarray) -> np.ndarray:
        """Pressure from density and internal energy *density*."""
        return (self.gamma - 1.0) * np.maximum(eint, 0.0)

    def sound_speed(self, rho: np.ndarray, p: np.ndarray) -> np.ndarray:
        return np.sqrt(self.gamma * np.maximum(p, 0.0)
                       / np.maximum(rho, self.rho_floor))

    def tau_from_eint(self, eint: np.ndarray) -> np.ndarray:
        """Entropy tracer from internal energy density."""
        return np.maximum(eint, 0.0) ** (1.0 / self.gamma)

    def eint_from_tau(self, tau: np.ndarray) -> np.ndarray:
        return np.maximum(tau, 0.0) ** self.gamma

    # -- dual-energy selection -----------------------------------------------

    def kinetic(self, rho: np.ndarray, sx: np.ndarray, sy: np.ndarray,
                sz: np.ndarray) -> np.ndarray:
        return 0.5 * (sx * sx + sy * sy + sz * sz) \
            / np.maximum(rho, self.rho_floor)

    def internal_energy(self, rho: np.ndarray, sx: np.ndarray,
                        sy: np.ndarray, sz: np.ndarray, egas: np.ndarray,
                        tau: np.ndarray) -> np.ndarray:
        """Dual-energy internal energy density.

        Uses E - K where it is numerically trustworthy, tau**gamma in
        high-Mach regions where the difference of large numbers loses
        precision.
        """
        kin = self.kinetic(rho, sx, sy, sz)
        diff = egas - kin
        safe = np.maximum(egas, _FLOOR)
        use_e = diff / safe > self.eta1
        return np.where(use_e, np.maximum(diff, 0.0),
                        self.eint_from_tau(tau))

    def sync_tau(self, rho: np.ndarray, sx: np.ndarray, sy: np.ndarray,
                 sz: np.ndarray, egas: np.ndarray,
                 tau: np.ndarray) -> np.ndarray:
        """Re-derive tau from E - K where the energy update is reliable."""
        kin = self.kinetic(rho, sx, sy, sz)
        diff = egas - kin
        safe = np.maximum(egas, _FLOOR)
        trust = diff / safe > self.eta2
        return np.where(trust, self.tau_from_eint(np.maximum(diff, 0.0)), tau)
