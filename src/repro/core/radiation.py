"""Gray two-moment (M1) radiation transport — the paper's Sec. 7 module.

"With respect to the astrophysical application, we have already developed
a radiation transport module for Octo-Tiger based on the two moment
approach adapted by [Skinner & Ostriker 2013].  This will be required to
simulate the V1309 merger with high accuracy."

This is a compact gray implementation of that approach: the radiation
energy density E_r and flux F_r evolve as a hyperbolic system closed by
the M1 (Levermore 1984) closure

    P_r = E_r [ (1-chi)/2 I + (3 chi - 1)/2 n (x) n ],
    chi = (3 + 4 f^2) / (5 + 2 sqrt(4 - 3 f^2)),  f = |F_r| / (c E_r),

which interpolates between the diffusion limit (P = E/3 I at f = 0) and
free streaming (P = E n(x)n at f = 1).  Transport uses the same
Rusanov/KT flux style as the hydro; matter coupling (absorption/emission
kappa, a_r T^4) is applied as a local implicit update so stiff opacities
do not limit the explicit transport step.

Units: the radiation constant ``a_rad`` and light speed ``c`` are free
parameters (reduced-speed-of-light runs are standard practice).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RadiationOptions", "RadiationField", "m1_closure",
           "radiation_rhs", "couple_matter", "radiation_dt"]

_EYE = np.eye(3)


@dataclass
class RadiationOptions:
    """Gray M1 configuration."""

    c_light: float = 10.0          # (reduced) speed of light, code units
    a_rad: float = 1.0             # radiation constant: E_eq = a T^4
    kappa: float = 1.0             # gray absorption opacity [1/length/rho]
    floor: float = 1e-12


@dataclass
class RadiationField:
    """Radiation state on an (n, n, n) block: E_r and F_r (3 comps)."""

    E: np.ndarray
    F: np.ndarray                  # shape (3, n, n, n)

    @classmethod
    def zeros(cls, shape: tuple[int, int, int],
              floor: float = 1e-12) -> "RadiationField":
        return cls(E=np.full(shape, floor), F=np.zeros((3,) + shape))

    def copy(self) -> "RadiationField":
        return RadiationField(self.E.copy(), self.F.copy())

    def total_energy(self, dv: float) -> float:
        return float(self.E.sum()) * dv


def m1_closure(E: np.ndarray, F: np.ndarray, c: float,
               floor: float = 1e-12) -> np.ndarray:
    """M1 pressure tensor P_r, shape (3, 3, n, n, n).

    The reduced flux is clipped to the causal ball |F| <= c E.
    """
    E_safe = np.maximum(E, floor)
    Fmag = np.sqrt((F * F).sum(axis=0))
    f = np.clip(Fmag / (c * E_safe), 0.0, 1.0)
    chi = (3.0 + 4.0 * f * f) / (5.0 + 2.0 * np.sqrt(4.0 - 3.0 * f * f))
    with np.errstate(invalid="ignore", divide="ignore"):
        n_hat = np.where(Fmag > floor, F / np.maximum(Fmag, floor), 0.0)
    iso = (1.0 - chi) / 2.0
    beam = (3.0 * chi - 1.0) / 2.0
    P = np.empty((3, 3) + E.shape)
    for i in range(3):
        for j in range(3):
            P[i, j] = E_safe * (iso * _EYE[i, j]
                                + beam * n_hat[i] * n_hat[j])
    return P


def _shift(q: np.ndarray, s: int, axis: int) -> np.ndarray:
    """Edge-replicated neighbour view along a spatial axis."""
    out = np.roll(q, -s, axis=axis)
    sl = [slice(None)] * q.ndim
    if s > 0:
        sl[axis] = slice(-s, None)
        src = [slice(None)] * q.ndim
        src[axis] = slice(-s - 1, -s)
    else:
        sl[axis] = slice(None, -s)
        src = [slice(None)] * q.ndim
        src[axis] = slice(-s, -s + 1)
    out[tuple(sl)] = q[tuple(src)]
    return out


def radiation_rhs(rad: RadiationField, dx: float,
                  options: RadiationOptions) -> tuple[np.ndarray, np.ndarray]:
    """(dE/dt, dF/dt) from transport alone (Rusanov fluxes, outflow edges).

    The system is dE/dt = -div F, dF_i/dt = -c^2 d_j P_ij, with maximal
    signal speed c.
    """
    c = options.c_light
    P = m1_closure(rad.E, rad.F, c, options.floor)
    dE = np.zeros_like(rad.E)
    dF = np.zeros_like(rad.F)
    for ax in range(3):
        # faces between cell i and i+1 via simple Rusanov average
        E_R = _shift(rad.E, 1, ax)
        F_R = _shift(rad.F, 1, 1 + ax)
        P_R = _shift(P, 1, 2 + ax)
        flux_E = 0.5 * (rad.F[ax] + F_R[ax]) - 0.5 * c * (E_R - rad.E)
        flux_F = 0.5 * c * c * (P[ax] + P_R[ax]) \
            - 0.5 * c * (F_R - rad.F)
        # divergence: (flux at my high face) - (flux at my low face)
        dE -= (flux_E - _shift(flux_E, -1, ax)) / dx
        for i in range(3):
            dF[i] -= (flux_F[i] - _shift(flux_F[i], -1, ax)) / dx
    return dE, dF


def couple_matter(rad: RadiationField, rho: np.ndarray, T: np.ndarray,
                  dt: float, options: RadiationOptions
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Implicit local absorption/emission update.

    Solves dE/dt = c kappa rho (a T^4 - E) with T held fixed over the
    substep (valid for small dt or large gas heat capacity) and damps the
    flux by the same opacity: dF/dt = -c kappa rho F.  Returns the energy
    exchanged with the gas (positive = gas gains) and the new equilibrium
    fraction, updating ``rad`` in place.
    """
    c, a = options.c_light, options.a_rad
    tau = c * options.kappa * np.maximum(rho, 0.0) * dt
    E_eq = a * np.maximum(T, 0.0) ** 4
    decay = np.exp(-tau)
    E_old = rad.E.copy()
    rad.E = E_eq + (rad.E - E_eq) * decay
    rad.F *= decay[None]
    np.maximum(rad.E, options.floor, out=rad.E)
    gas_gain = E_old - rad.E
    return gas_gain, decay


def radiation_dt(dx: float, options: RadiationOptions,
                 cfl: float = 0.4) -> float:
    """Explicit transport step limit: cfl * dx / c."""
    return cfl * dx / options.c_light
