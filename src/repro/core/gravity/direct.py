"""Direct O(N^2) summation: the verification reference for the FMM.

Treats every leaf cell as a point mass (the same convention the FMM's
leaf level uses), so the FMM must converge to this solver as the opening
criterion tightens.  Pure NumPy, chunked to bound memory; fine up to a
few times 10^4 cells.
"""

from __future__ import annotations

import numpy as np

__all__ = ["direct_potential", "direct_field", "direct_summation"]

_CHUNK = 512


def direct_field(pos: np.ndarray, mass: np.ndarray,
                 targets: np.ndarray | None = None
                 ) -> tuple[np.ndarray, np.ndarray]:
    """(phi, acc) at ``targets`` (default: at every source) from point
    masses at ``pos`` — self-interaction excluded, G = 1."""
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    if pos.ndim != 2 or pos.shape[1] != 3:
        raise ValueError("positions must be (n, 3)")
    if len(mass) != len(pos):
        raise ValueError("mass/position length mismatch")
    tg = pos if targets is None else np.asarray(targets, dtype=np.float64)
    phi = np.zeros(len(tg))
    acc = np.zeros((len(tg), 3))
    # chunk-sized scratch hoisted out of the loop (the last, possibly
    # shorter chunk uses leading views)
    c_max = min(_CHUNK, max(len(tg), 1))
    d_buf = np.empty((c_max, len(pos), 3))
    r2_buf = np.empty((c_max, len(pos)))
    for lo in range(0, len(tg), _CHUNK):
        hi = min(lo + _CHUNK, len(tg))
        c = hi - lo
        d = np.subtract(tg[lo:hi, None, :], pos[None, :, :],
                        out=d_buf[:c])                       # (c, n, 3)
        r2 = np.add(d[:, :, 0] * d[:, :, 0] + d[:, :, 1] * d[:, :, 1],
                    d[:, :, 2] * d[:, :, 2], out=r2_buf[:c])
        near_zero = r2 < 1e-24
        r2[near_zero] = 1.0
        inv = 1.0 / np.sqrt(r2)
        inv[near_zero] = 0.0
        phi[lo:hi] = -(mass[None, :] * inv).sum(axis=1)
        w = mass[None, :] * inv ** 3
        for k in range(3):
            acc[lo:hi, k] = -(w * d[:, :, k]).sum(axis=1)
    return phi, acc


def direct_potential(pos: np.ndarray, mass: np.ndarray) -> np.ndarray:
    """Potential only (see :func:`direct_field`)."""
    return direct_field(pos, mass)[0]


def direct_summation(rho: np.ndarray, dx: float
                     ) -> tuple[np.ndarray, np.ndarray]:
    """(phi, acc) grids for a cubic density grid, matching the layout of
    :meth:`~repro.core.gravity.fmm.FmmSolver.uniform_field`."""
    M = rho.shape[0]
    if rho.shape != (M, M, M):
        raise ValueError("density grid must be cubic")
    g = (np.arange(M) + 0.5) * dx
    X, Y, Z = np.meshgrid(g, g, g, indexing="ij")
    pos = np.stack([X, Y, Z], -1).reshape(-1, 3)
    mass = (np.asarray(rho, dtype=np.float64) * dx ** 3).ravel()
    phi, acc = direct_field(pos, mass)
    return phi.reshape(M, M, M), acc.reshape(M, M, M, 3)
