"""The three-step cell-based FMM gravity solver (Sec. 4.3).

Steps, exactly as the paper lays them out:

1. **Upward** (bottom-up tree traversal): leaf cells take their mass from
   the hydro density; every refined cell aggregates the multipole moments
   and centre of mass of its eight child cells (M2M).

2. **Same-level interactions**: each cell interacts with the neighbours
   selected by the opening criterion.  Our partition is parity-exact
   (see :mod:`.stencil`): a pair is processed by the multipole kernel at
   the coarsest level at which it is well separated; leaf-level near
   pairs go through the 12-flop monopole P2P kernel; near pairs between a
   leaf and a refined cell descend on the refined side (the paper's
   monopole-multipole / multipole-monopole AMR-boundary kernels).

3. **Downward** (top-down): Taylor expansions (potential, acceleration,
   Hessian) shift from parents to children (L2L) and accumulate.

Conservation comes from construction: every pair force is computed once
and applied antisymmetrically, and the Hessian term of the downward pass
realizes the quadrupole (tidal) torques on child cells, so total linear
and angular momentum of the resulting field are conserved to machine
precision (see ``tests/core/test_fmm_conservation.py``).

The implementation is struct-of-arrays NumPy throughout — per level, per
stencil offset, cells are matched by Morton-key ``searchsorted`` and whole
pair batches run through the vectorized kernels, mirroring the paper's
stencil-based SoA redesign of Sec. 4.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ...runtime.counters import default_registry
from ...sanitize import racecheck as _racecheck
from ...sanitize import state as _sanitize_state
from ...util import morton_key
from ..workspace import Workspace
from .kernels import m2l_pair, p2p_pair, p2p_pair_staged
from .multipole import aggregate_m2m, taylor_shift
from .stencil import (OPENING_R2, canonical_stencil, p2p_stencil,
                      parity_stencils, root_stencil)

__all__ = ["FmmLevel", "FmmSolver", "GravityResult"]

_TINY = 1e-300


def _fresh_p2p_out(n: int) -> tuple[np.ndarray, ...]:
    """Freshly allocated (phiA, phiB, accA, accB) batch outputs."""
    return (np.empty(n), np.empty(n), np.empty((n, 3)), np.empty((n, 3)))


def _fresh_m2l_out(n: int) -> tuple[np.ndarray, ...]:
    """Freshly allocated (phiA, phiB, accA, accB, HA, HB) batch outputs."""
    return (np.empty(n), np.empty(n), np.empty((n, 3)), np.empty((n, 3)),
            np.empty((n, 3, 3)), np.empty((n, 3, 3)))


@dataclass
class FmmLevel:
    """All FMM cells of one octree level, Morton-sorted SoA."""

    level: int
    width: float                      # cell width
    coords: np.ndarray                # (n, 3) int64, Morton-sorted
    leaf: np.ndarray                  # (n,) bool
    keys: np.ndarray = field(init=False)
    # multipole data
    m: np.ndarray = field(init=False)
    com: np.ndarray = field(init=False)
    M2: np.ndarray = field(init=False)
    # Taylor accumulators
    phi: np.ndarray = field(init=False)
    acc: np.ndarray = field(init=False)
    hess: np.ndarray = field(init=False)
    parent_slot: np.ndarray | None = None

    def __post_init__(self) -> None:
        n = len(self.coords)
        self.keys = morton_key(self.coords)
        if not np.all(np.diff(self.keys.astype(np.int64)) > 0):
            raise ValueError("level cells must be Morton-sorted and unique")
        self.m = np.zeros(n)
        self.com = np.zeros((n, 3))
        self.M2 = np.zeros((n, 3, 3))
        self.phi = np.zeros(n)
        self.acc = np.zeros((n, 3))
        self.hess = np.zeros((n, 3, 3))

    @property
    def n(self) -> int:
        return len(self.coords)

    def centers(self) -> np.ndarray:
        """Geometric cell centres (domain corner at the origin)."""
        return (self.coords + 0.5) * self.width

    def find(self, coords: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Locate cells by integer coordinates: (slots, found mask)."""
        keys = morton_key(coords)
        pos = np.searchsorted(self.keys, keys)
        pos = np.minimum(pos, self.n - 1)
        found = self.keys[pos] == keys
        return pos, found


@dataclass(frozen=True)
class GravityResult:
    """Leaf-cell gravitational field, grouped per level."""

    phi: dict[int, np.ndarray]        # level -> (n_leaf_cells,)
    acc: dict[int, np.ndarray]        # level -> (n_leaf_cells, 3)
    leaf_slots: dict[int, np.ndarray]  # level -> slots into the level SoA


@lru_cache(maxsize=1)
def _parity_offset_table() -> tuple[np.ndarray, np.ndarray]:
    """Union of the parity M2L lists (lex-positive) plus a per-offset map
    of which parities use it."""
    par_lists = parity_stencils()
    union = {tuple(w) for lst in par_lists.values() for w in lst}
    offsets = _lex_positive(np.array(sorted(union), dtype=np.int64))
    sets = {p: {tuple(w) for w in lst} for p, lst in par_lists.items()}
    par_ok = np.zeros((len(offsets), 8), dtype=bool)
    for wi, w in enumerate(offsets):
        tw = tuple(int(c) for c in w)
        for p, lst in sets.items():
            par_ok[wi, (p[0] << 2) | (p[1] << 1) | p[2]] = tw in lst
    return offsets, par_ok


def _lex_positive(offsets: np.ndarray) -> np.ndarray:
    """Keep one representative of every {w, -w} pair (w lexicographically
    greater than zero)."""
    w = offsets
    key = (w[:, 0] > 0) | ((w[:, 0] == 0) & (w[:, 1] > 0)) \
        | ((w[:, 0] == 0) & (w[:, 1] == 0) & (w[:, 2] > 0))
    return w[key]


def _accumulate(lv: FmmLevel, idx: np.ndarray, phi: np.ndarray,
                acc: np.ndarray, hess: np.ndarray | None) -> None:
    """Scatter-add pair contributions (bincount: much faster than add.at)."""
    n = lv.n
    lv.phi += np.bincount(idx, weights=phi, minlength=n)
    for d in range(3):
        lv.acc[:, d] += np.bincount(idx, weights=acc[:, d], minlength=n)
    if hess is not None:
        for i in range(3):
            for j in range(i, 3):
                h = np.bincount(idx, weights=hess[:, i, j], minlength=n)
                lv.hess[:, i, j] += h
                if i != j:
                    lv.hess[:, j, i] += h


class FmmSolver:
    """Gravity solve over a hierarchy of FMM levels.

    Build with :meth:`from_uniform` (a single fine grid, coarser levels
    derived) or :meth:`from_levels` (adaptive cell sets).  Units: G = 1.
    """

    def __init__(self, levels: list[FmmLevel]):
        if not levels:
            raise ValueError("need at least one level")
        self.levels = levels
        self._link_parents()
        # interaction pair lists depend only on geometry: record them on
        # the first solve and replay on subsequent ones (Mesh re-solves
        # gravity every hydro stage on a fixed grid)
        self._pair_script: list[tuple[str, int, np.ndarray, int,
                                      np.ndarray]] | None = None
        self._recording = False
        # aggregated-replay plan: script entries resolved to level objects
        # plus per-entry staging buffers (see _prepare_replay)
        self._plan: list[tuple] | None = None
        self._stage: list[tuple | None] | None = None
        self._stage_bytes = 0
        # scratch for the serial compute path: pair gathers and kernel
        # outputs live in capacity-grown buffers reused across batches
        # and solves (each batch is fully accumulated before the next
        # compute, so reuse is safe; the futurized path draws per-entry
        # outputs from a slot-indexed pool instead — see _compute_entry)
        self._ws = Workspace()
        # futurized per-entry output pool, keyed by (kind, chunk slot):
        # _replay_futurized fully accumulates each dispatched chunk
        # before issuing the next, so slot j's buffers are free again by
        # the time the next chunk's entry j starts computing
        self._out_pool: dict[tuple[str, int], tuple[np.ndarray, ...]] = {}

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_uniform(cls, rho: np.ndarray, dx: float,
                     subgrid_n: int = 8) -> "FmmSolver":
        """Solver for a uniform (M, M, M) density grid, M = subgrid_n * 2^L.

        Builds the full level hierarchy; only the finest level is leaf.
        """
        M = rho.shape[0]
        if rho.shape != (M, M, M):
            raise ValueError("density grid must be cubic")
        depth = 0
        while subgrid_n * (1 << depth) < M:
            depth += 1
        if subgrid_n * (1 << depth) != M:
            raise ValueError(
                f"grid edge {M} is not {subgrid_n} * 2^L for any L")
        levels: list[FmmLevel] = []
        for lvl in range(depth + 1):
            edge = subgrid_n * (1 << lvl)
            g = np.arange(edge, dtype=np.int64)
            coords = np.stack(np.meshgrid(g, g, g, indexing="ij"),
                              axis=-1).reshape(-1, 3)
            order = np.argsort(morton_key(coords), kind="stable")
            coords = coords[order]
            leaf = np.full(len(coords), lvl == depth)
            levels.append(FmmLevel(level=lvl, width=dx * (M // edge),
                                   coords=coords, leaf=leaf))
        solver = cls(levels)
        solver.set_leaf_density({depth: rho})
        solver._uniform_shape = (depth, M)
        return solver

    @classmethod
    def from_levels(cls, specs: list[tuple[int, float, np.ndarray, np.ndarray]]
                    ) -> "FmmSolver":
        """Adaptive solver from (level, width, coords, leaf_mask) specs."""
        levels = []
        for lvl, width, coords, leaf in specs:
            order = np.argsort(morton_key(coords), kind="stable")
            levels.append(FmmLevel(level=lvl, width=width,
                                   coords=coords[order], leaf=leaf[order]))
        return cls(levels)

    def _link_parents(self) -> None:
        for lvl in range(1, len(self.levels)):
            child = self.levels[lvl]
            parent = self.levels[lvl - 1]
            slots, found = parent.find(child.coords >> 1)
            if not found.all():
                raise ValueError(
                    f"level {lvl} has cells without a parent at {lvl - 1}")
            child.parent_slot = slots

    # -- state input -------------------------------------------------------------

    def set_leaf_density(self, rho_by_level: dict[int, np.ndarray]) -> None:
        """Assign leaf-cell masses from densities.

        ``rho_by_level[l]`` is either a flat array over that level's leaf
        cells (in the level's Morton order) or, for a fully-leaf uniform
        level, a cubic grid indexed by integer coordinates.
        """
        for lvl_obj in self.levels:
            mask = lvl_obj.leaf
            if not mask.any():
                continue
            rho = rho_by_level.get(lvl_obj.level)
            if rho is None:
                raise ValueError(f"missing density for level {lvl_obj.level}")
            rho = np.asarray(rho, dtype=np.float64)
            if rho.ndim == 3:
                c = lvl_obj.coords[mask]
                vals = rho[c[:, 0], c[:, 1], c[:, 2]]
            else:
                vals = rho
            if np.any(vals < 0):
                raise ValueError("negative density")
            vol = lvl_obj.width ** 3
            lvl_obj.m[mask] = vals * vol
            lvl_obj.com[mask] = lvl_obj.centers()[mask]
            lvl_obj.M2[mask] = 0.0

    # -- the three FMM steps -----------------------------------------------------

    def solve(self, executor=None) -> GravityResult:
        """Run the three FMM steps; returns the leaf field.

        ``executor`` is an optional
        :class:`~repro.core.exec.ExecutionEngine`: the recorded same-level
        interaction batches are then dispatched as independent tasks onto
        scheduler workers and (when the engine holds a device) coalesced
        into aggregated launches on GPU streams with CPU overflow — the
        paper's futurized per-subgrid gravity (Sec. 5.1) plus the
        work-aggregation layer (arXiv 2210.06438).  Pair contributions
        are *accumulated* on the calling thread in recorded batch order,
        so a futurized solve is bit-identical to a serial one.

        The very first solve records the geometry-dependent pair script
        and therefore runs serially; every subsequent solve replays it,
        futurized when an executor is given.
        """
        reg = default_registry()
        reg.increment("/fmm/solves")
        self._reset_taylor()
        self._upward()
        if self._pair_script is None:
            self._pair_script = []
            self._recording = True
            self._same_level()
            self._recording = False
        elif executor is not None:
            reg.increment("/fmm/solves-futurized")
            self._replay_futurized(executor)
        else:
            self._replay()
        self._downward()
        return self._collect()

    def _replay(self) -> None:
        reg = default_registry()
        by_id = {lv.level: lv for lv in self.levels}
        for kind, la_lvl, a, lb_lvl, b in self._pair_script:
            la, lb = by_id[la_lvl], by_id[lb_lvl]
            if kind == "m2l":
                reg.increment("/fmm/interactions/multipole", len(a))
                self._m2l_kernel(la, a, lb, b)
            else:
                reg.increment("/fmm/interactions/monopole", len(a))
                self._p2p_kernel(la, a, lb, b)

    #: staging-buffer memory budget (bytes) for the aggregated replay
    #: path; entries past the budget compute their geometry per solve.
    #: Kept deliberately modest: past a few hundred MB the extra
    #: resident set costs more in memory traffic than the saved
    #: Green-function arithmetic returns.
    _STAGE_BUDGET_BYTES = 256 * 1024 ** 2

    def _prepare_replay(self) -> None:
        """Resolve the pair script into the aggregated replay plan.

        Per entry we keep the level objects (no dict lookup per replay)
        and, for leaf-leaf P2P batches, **staging buffers**: the
        separations ``dR`` and inverse-distance factors of the batch.
        Leaf centres of mass are pinned to the geometric cell centres by
        :meth:`set_leaf_density`, so these are constants of the solver's
        geometry — the slot-buffer reuse of the work-aggregation design,
        amortizing the per-launch gather/Green-function setup across
        solves.  Staging stops at ``_STAGE_BUDGET_BYTES``; the total is
        published as the ``/fmm/staged-bytes`` gauge.

        The factors are computed with exactly the expressions of
        :func:`repro.core.gravity.kernels.p2p_pair`, so the staged kernel
        stays bit-identical to the serial reference.
        """
        by_id = {lv.level: lv for lv in self.levels}
        plan: list[tuple] = []
        stage: list[tuple | None] = []
        used = 0
        for kind, la_lvl, a, lb_lvl, b in self._pair_script:
            la, lb = by_id[la_lvl], by_id[lb_lvl]
            plan.append((kind, la, a, lb, b))
            staged = None
            if (kind == "p2p" and bool(la.leaf[a].all())
                    and bool(lb.leaf[b].all())):
                need = a.size * 5 * 8  # dR (n,3) + inv + inv3, float64
                if used + need <= self._STAGE_BUDGET_BYTES:
                    dR = la.com[a] - lb.com[b]
                    x, y, z = dR[:, 0], dR[:, 1], dR[:, 2]
                    r2 = x * x + y * y + z * z
                    inv = 1.0 / np.sqrt(r2)
                    inv3 = inv / r2
                    staged = (dR, inv, inv3)
                    used += need
            stage.append(staged)
        self._plan, self._stage, self._stage_bytes = plan, stage, used
        default_registry().set_gauge("/fmm/staged-bytes", float(used))

    #: pair-tile size of the aggregated compute path.  A recorded M2L
    #: batch of ~250k pairs churns hundreds of MB of Green-function
    #: temporaries (``g3`` alone is 216 B/pair); running the kernel over
    #: cache-sized sub-batches keeps the temporaries resident and is
    #: measurably faster on the same flops.  All pair kernels are
    #: elementwise along the pair axis, so tiling + concatenation is
    #: bitwise identical to the one-shot call.
    _TILE = 16384

    @staticmethod
    def _run_tiled(kernel, n: int, tile_args, make_out):
        """Run an elementwise pair ``kernel`` in :attr:`_TILE`-sized
        sub-batches; ``tile_args(sl)`` gathers one tile's inputs.

        Gathering *per tile* (rather than the whole batch up front)
        keeps each gathered tile cache-resident through the kernel
        call.  Every tile writes its results straight into slices of
        the preallocated batch outputs ``make_out(n)`` via the kernels'
        ``out=`` parameter — no per-tile result lists, no concatenate.
        """
        tile = FmmSolver._TILE
        outs = make_out(n)
        if _sanitize_state.ACTIVE:
            # whole-batch write declaration for the (possibly pooled)
            # output buffers this task is about to fill
            for o in outs:
                _racecheck.access(o, "w", owner="fmm/pair-out")
        for lo in range(0, n, tile):
            sl = slice(lo, min(lo + tile, n))
            kernel(*tile_args(sl), out=tuple(o[sl] for o in outs))
        return outs

    def _pool_out(self, kind: str, slot: int, n: int
                  ) -> tuple[np.ndarray, ...]:
        """Capacity-grown per-entry output buffers for chunk slot ``slot``.

        The pool is NOT thread-local: slot ``j``'s buffers are written
        by whichever worker computes a chunk's ``j``-th entry and read
        by the accumulating thread, which finishes the whole chunk
        before the next one is dispatched — so distinct in-flight
        entries never share a slot and reuse across chunks is safe.
        """
        key = (kind, slot)
        trailing = ((), (), (3,), (3,)) if kind == "p2p" \
            else ((), (), (3,), (3,), (3, 3), (3, 3))
        cur = self._out_pool.get(key)
        if cur is None or len(cur[0]) < n:
            cur = tuple(np.empty((n,) + t) for t in trailing)
            self._out_pool[key] = cur
        return tuple(o[:n] for o in cur)

    def _compute_entry(self, i: int, slot: int | None = None):
        """Pure compute half of replay-plan entry ``i`` (engine task).

        Runs the pair kernel tiled with per-tile gathers (see
        :attr:`_TILE` and :meth:`_run_tiled`).  No accumulation happens
        here, so entries are safe to compute concurrently and in any
        order.  Outputs come from the slot-indexed pool (``slot`` is the
        entry's position within its dispatched chunk — see
        :meth:`_pool_out`), or are freshly allocated when no slot is
        given; the calling thread is still accumulating earlier entries
        while workers compute later ones, so the serial path's single
        set of workspace output buffers must not be shared here.
        """
        kind, la, a, lb, b = self._plan[i]
        if kind == "m2l":
            make_out = _fresh_m2l_out if slot is None \
                else (lambda n: self._pool_out("m2l", slot, n))

            def tile_args(sl):
                at, bt = a[sl], b[sl]
                return (la.com[at] - lb.com[bt],
                        np.maximum(la.m[at], _TINY),
                        np.maximum(lb.m[bt], _TINY),
                        la.M2[at], lb.M2[bt])
            return self._run_tiled(m2l_pair, len(a), tile_args, make_out)
        make_out = _fresh_p2p_out if slot is None \
            else (lambda n: self._pool_out("p2p", slot, n))
        staged = self._stage[i]
        if staged is None:
            def tile_args(sl):
                at, bt = a[sl], b[sl]
                return (la.com[at] - lb.com[bt],
                        np.maximum(la.m[at], _TINY),
                        np.maximum(lb.m[bt], _TINY))
            return self._run_tiled(p2p_pair, len(a), tile_args,
                                   make_out)
        dR, inv, inv3 = staged

        def tile_args(sl):
            return (dR[sl], inv[sl], inv3[sl],
                    np.maximum(la.m[a[sl]], _TINY),
                    np.maximum(lb.m[b[sl]], _TINY))
        return self._run_tiled(p2p_pair_staged, len(a), tile_args,
                               make_out)

    def _replay_futurized(self, engine) -> None:
        """Dispatch the pair script through an execution engine.

        Each script entry becomes one task computing its kernel batch
        (the compute-heavy gather + vectorized pair kernel, with staged
        geometry where available — see :meth:`_prepare_replay`); the
        engine coalesces each slot-buffer-sized chunk of entries into
        one aggregated stream launch.  Launches are dispatched **one at
        a time**, each fully scatter-accumulated before the next is
        issued: a chunk of large batches produces hundreds of MB of
        kernel output, and letting multiple chunks compute or queue
        concurrently costs more in cache/memory traffic than the
        overlap buys back (time-sliced on a busy host, two in-flight
        aggregated ops simply evict each other).  Accumulation runs
        here, in script order, so the result is byte-identical to
        :meth:`_replay` regardless of how the batches were placed,
        aggregated or interleaved.
        """
        reg = default_registry()
        script = self._pair_script
        if self._plan is None:
            self._prepare_replay()
        n = len(script)
        chunk = max(int(getattr(engine, "agg_slots", 1)), 1)
        for lo in range(0, n, chunk):
            hi = min(n, lo + chunk)
            futs = engine.map(self._compute_entry,
                              [(i, j) for j, i in enumerate(range(lo, hi))])
            for j, i in enumerate(range(lo, hi)):
                kind, la, a, lb, b = self._plan[i]
                out = futs[j].get()
                futs[j] = None  # release the output once accumulated
                if _sanitize_state.ACTIVE:
                    # the future's resolution edge orders these reads
                    # after the computing worker's writes; slot reuse in
                    # the next chunk is ordered through the re-dispatch
                    for o in out:
                        _racecheck.access(o, "r", owner="fmm/pair-out")
                if kind == "m2l":
                    reg.increment("/fmm/interactions/multipole", len(a))
                    phiA, phiB, accA, accB, HA, HB = out
                    _accumulate(la, a, phiA, accA, HA)
                    _accumulate(lb, b, phiB, accB, HB)
                else:
                    reg.increment("/fmm/interactions/monopole", len(a))
                    phiA, phiB, accA, accB = out
                    _accumulate(la, a, phiA, accA, None)
                    _accumulate(lb, b, phiB, accB, None)
                del out

    def _reset_taylor(self) -> None:
        for lv in self.levels:
            lv.phi[:] = 0.0
            lv.acc[:] = 0.0
            lv.hess[:] = 0.0

    def _upward(self) -> None:
        """Step 1: M2M aggregation, finest to coarsest."""
        for lvl in range(len(self.levels) - 1, 0, -1):
            child = self.levels[lvl]
            parent = self.levels[lvl - 1]
            interior = ~parent.leaf
            if not interior.any():
                continue
            m, com, M2 = aggregate_m2m(child.m, child.com, child.M2,
                                       child.parent_slot, parent.n)
            parent.m[interior] = m[interior]
            parent.com[interior] = com[interior]
            parent.M2[interior] = M2[interior]

    # -- step 2: same-level + near-field -------------------------------------------

    def _same_level(self) -> None:
        mixed: list[tuple[int, np.ndarray, int, np.ndarray]] = []
        root_offsets = _lex_positive(root_stencil())
        offsets_p, par_ok = _parity_offset_table()
        for li, lv in enumerate(self.levels):
            par_code = ((lv.coords[:, 0] & 1) << 2) \
                | ((lv.coords[:, 1] & 1) << 1) | (lv.coords[:, 2] & 1)
            if li == 0:
                self._m2l_offsets(lv, root_offsets, par_code, None)
            else:
                self._m2l_offsets(lv, offsets_p, par_code, par_ok)
            self._near_field(lv, par_code, mixed)
        self._mixed_descent(mixed)

    #: pair-batch flush threshold (keeps kernel temporaries ~100 MB)
    _CHUNK = 250_000

    def _m2l_offsets(self, lv: FmmLevel, offsets: np.ndarray,
                     par_code: np.ndarray,
                     par_ok: np.ndarray | None) -> None:
        buf_a: list[np.ndarray] = []
        buf_b: list[np.ndarray] = []
        buffered = 0
        for wi, w in enumerate(offsets):
            nb = lv.coords + w
            slots, found = lv.find(nb)
            sel = found
            if par_ok is not None:
                sel = sel & par_ok[wi][par_code]
            if not sel.any():
                continue
            buf_a.append(np.nonzero(sel)[0])
            buf_b.append(slots[sel])
            buffered += len(buf_a[-1])
            if buffered >= self._CHUNK:
                self._apply_m2l(lv, np.concatenate(buf_a), lv,
                                np.concatenate(buf_b))
                buf_a, buf_b, buffered = [], [], 0
        if buffered:
            self._apply_m2l(lv, np.concatenate(buf_a), lv,
                            np.concatenate(buf_b))

    def _apply_m2l(self, la: FmmLevel, a: np.ndarray,
                   lb: FmmLevel, b: np.ndarray) -> None:
        # leaf-leaf pairs carry no quadrupoles (M2 = 0) and need no
        # Hessian (no children to shift to): route them through the cheap
        # monopole kernel — the paper's 12-flop vs 455-flop split
        both_leaf = la.leaf[a] & lb.leaf[b]
        if both_leaf.all():
            self._apply_p2p(la, a, lb, b)
            return
        if both_leaf.any():
            self._apply_p2p(la, a[both_leaf], lb, b[both_leaf])
            rest = ~both_leaf
            a, b = a[rest], b[rest]
        if self._recording:
            self._validate_pairs(la, a, lb, b)
            self._pair_script.append(("m2l", la.level, a, lb.level, b))
        default_registry().increment("/fmm/interactions/multipole", len(a))
        self._m2l_kernel(la, a, lb, b)

    @staticmethod
    def _validate_pairs(la: FmmLevel, a: np.ndarray,
                        lb: FmmLevel, b: np.ndarray) -> None:
        """Plan-build-time separation guard, hoisted out of the kernels.

        Distinct cells always have distinct geometric centres (and the
        COMs the kernels divide by lie strictly inside their cells), so
        a zero geometric separation means the pair lists are broken —
        e.g. a cell paired with itself.  Checking once per recorded
        batch replaces the old per-call ``r2 == 0`` scan inside
        ``greens`` on every solve.
        """
        cA = (la.coords[a] + 0.5) * la.width
        cB = (lb.coords[b] + 0.5) * lb.width
        d = cA - cB
        if np.any(np.einsum("ni,ni->n", d, d) == 0.0):
            raise ValueError("coincident cells in interaction kernel")

    def _gather_pairs(self, la: FmmLevel, a: np.ndarray,
                      lb: FmmLevel, b: np.ndarray, tag: str
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gather (dR, mA, mB) of one pair batch into workspace buffers."""
        ws = self._ws
        n = len(a)
        cA = np.take(la.com, a, axis=0, out=ws.take(tag + ":cA", n, (3,)))
        cB = np.take(lb.com, b, axis=0, out=ws.take(tag + ":cB", n, (3,)))
        dR = np.subtract(cA, cB, out=cA)
        mA = np.take(la.m, a, out=ws.take(tag + ":mA", n))
        np.maximum(mA, _TINY, out=mA)
        mB = np.take(lb.m, b, out=ws.take(tag + ":mB", n))
        np.maximum(mB, _TINY, out=mB)
        return dR, mA, mB

    def _m2l_compute(self, la: FmmLevel, a: np.ndarray,
                     lb: FmmLevel, b: np.ndarray):
        """Serial compute half of M2L: workspace gathers + fused pair
        kernel writing into reused workspace outputs.  Safe because the
        caller accumulates the batch before the next compute begins."""
        ws = self._ws
        n = len(a)
        dR, mA, mB = self._gather_pairs(la, a, lb, b, "m2l")
        M2A = np.take(la.M2, a, axis=0, out=ws.take("m2l:M2A", n, (3, 3)))
        M2B = np.take(lb.M2, b, axis=0, out=ws.take("m2l:M2B", n, (3, 3)))
        out = (ws.take("m2l:phiA", n), ws.take("m2l:phiB", n),
               ws.take("m2l:accA", n, (3,)), ws.take("m2l:accB", n, (3,)),
               ws.take("m2l:HA", n, (3, 3)), ws.take("m2l:HB", n, (3, 3)))
        return m2l_pair(dR, mA, mB, M2A, M2B, out=out)

    def _m2l_kernel(self, la: FmmLevel, a: np.ndarray,
                    lb: FmmLevel, b: np.ndarray) -> None:
        phiA, phiB, accA, accB, HA, HB = self._m2l_compute(la, a, lb, b)
        _accumulate(la, a, phiA, accA, HA)
        _accumulate(lb, b, phiB, accB, HB)

    def _apply_p2p(self, la: FmmLevel, a: np.ndarray,
                   lb: FmmLevel, b: np.ndarray) -> None:
        if self._recording:
            self._validate_pairs(la, a, lb, b)
            self._pair_script.append(("p2p", la.level, a, lb.level, b))
        default_registry().increment("/fmm/interactions/monopole", len(a))
        self._p2p_kernel(la, a, lb, b)

    def _p2p_compute(self, la: FmmLevel, a: np.ndarray,
                     lb: FmmLevel, b: np.ndarray):
        """Serial compute half of P2P (see :meth:`_m2l_compute`)."""
        ws = self._ws
        n = len(a)
        dR, mA, mB = self._gather_pairs(la, a, lb, b, "p2p")
        out = (ws.take("p2p:phiA", n), ws.take("p2p:phiB", n),
               ws.take("p2p:accA", n, (3,)), ws.take("p2p:accB", n, (3,)))
        return p2p_pair(dR, mA, mB, out=out)

    def _p2p_kernel(self, la: FmmLevel, a: np.ndarray,
                    lb: FmmLevel, b: np.ndarray) -> None:
        phiA, phiB, accA, accB = self._p2p_compute(la, a, lb, b)
        _accumulate(la, a, phiA, accA, None)
        _accumulate(lb, b, phiB, accB, None)

    def _near_field(self, lv: FmmLevel,
                    par_code: np.ndarray,
                    mixed: list) -> None:
        li = lv.level
        buf_a: list[np.ndarray] = []
        buf_b: list[np.ndarray] = []
        for w in _lex_positive(p2p_stencil()):
            nb = lv.coords + w
            slots, found = lv.find(nb)
            if not found.any():
                continue
            a = np.nonzero(found)[0]
            b = slots[found]
            a_leaf = lv.leaf[a]
            b_leaf = lv.leaf[b]
            both_leaf = a_leaf & b_leaf
            if both_leaf.any():
                buf_a.append(a[both_leaf])
                buf_b.append(b[both_leaf])
            # leaf x interior: descend on the interior side
            am = a_leaf & ~b_leaf
            if am.any():
                mixed.append((li, a[am], li, b[am]))
            bm = ~a_leaf & b_leaf
            if bm.any():
                mixed.append((li, b[bm], li, a[bm]))
            # interior x interior: children handle it (parity partition)
        if buf_a:
            self._apply_p2p(lv, np.concatenate(buf_a), lv,
                            np.concatenate(buf_b))

    def _mixed_descent(self, queue: list) -> None:
        """AMR-boundary near-field: leaf cell vs refined cell.

        The refined side splits until the pair is well separated at the
        child scale (mixed M2L) or hits a leaf (P2P) — the paper's
        monopole-multipole / multipole-monopole kernel cases.
        """
        level_by_id = {lv.level: lv for lv in self.levels}
        while queue:
            leaf_lvl, leaf_idx, int_lvl, int_idx = queue.pop()
            lleaf = level_by_id[leaf_lvl]
            lint = level_by_id[int_lvl]
            lchild = level_by_id.get(int_lvl + 1)
            if lchild is None:
                # unbalanced input tree: treat as direct interaction
                self._apply_p2p(lleaf, leaf_idx, lint, int_idx)
                continue
            # children of the interior cells (Morton-contiguous)
            child_parent = lchild.parent_slot
            order = np.argsort(child_parent, kind="stable")
            sorted_parents = child_parent[order]
            starts = np.searchsorted(sorted_parents, int_idx, side="left")
            ends = np.searchsorted(sorted_parents, int_idx, side="right")
            reps = ends - starts
            if (reps == 0).any():
                raise RuntimeError("interior cell without children")
            child_slots = np.concatenate([
                order[s:e] for s, e in zip(starts, ends)])
            leaf_rep = np.repeat(leaf_idx, reps)
            # separation test at the child scale, on geometric centres
            ctr_leaf = (lleaf.coords[leaf_rep] + 0.5) * lleaf.width
            ctr_child = (lchild.coords[child_slots] + 0.5) * lchild.width
            d2 = ((ctr_leaf - ctr_child) ** 2).sum(axis=1)
            far = d2 > OPENING_R2 * lchild.width ** 2
            if far.any():
                self._apply_m2l(lleaf, leaf_rep[far], lchild,
                                child_slots[far])
            near = ~far
            if near.any():
                c_leaf = lchild.leaf[child_slots[near]]
                if c_leaf.any():
                    self._apply_p2p(lleaf, leaf_rep[near][c_leaf],
                                    lchild, child_slots[near][c_leaf])
                deeper = ~c_leaf
                if deeper.any():
                    queue.append((leaf_lvl, leaf_rep[near][deeper],
                                  int_lvl + 1, child_slots[near][deeper]))

    def _downward(self) -> None:
        """Step 3: L2L Taylor shifts, coarsest to finest."""
        for lvl in range(1, len(self.levels)):
            child = self.levels[lvl]
            parent = self.levels[lvl - 1]
            ps = child.parent_slot
            d = child.com - parent.com[ps]
            phi, acc, hess = taylor_shift(parent.phi[ps], parent.acc[ps],
                                          parent.hess[ps], d)
            child.phi += phi
            child.acc += acc
            child.hess += hess

    # -- output ---------------------------------------------------------------

    def _collect(self) -> GravityResult:
        phi: dict[int, np.ndarray] = {}
        acc: dict[int, np.ndarray] = {}
        slots: dict[int, np.ndarray] = {}
        for lv in self.levels:
            mask = lv.leaf
            if mask.any():
                sel = np.nonzero(mask)[0]
                phi[lv.level] = lv.phi[sel]
                acc[lv.level] = lv.acc[sel]
                slots[lv.level] = sel
        return GravityResult(phi=phi, acc=acc, leaf_slots=slots)

    def uniform_field(self, result: GravityResult
                      ) -> tuple[np.ndarray, np.ndarray]:
        """For ``from_uniform`` solvers: (phi, acc) as cubic grids."""
        depth, M = self._uniform_shape
        lv = self.levels[depth]
        phi = np.zeros((M, M, M))
        acc = np.zeros((M, M, M, 3))
        sel = result.leaf_slots[depth]
        c = lv.coords[sel]
        phi[c[:, 0], c[:, 1], c[:, 2]] = result.phi[depth]
        acc[c[:, 0], c[:, 1], c[:, 2]] = result.acc[depth]
        return phi, acc
