"""FMM interaction kernels: Green-function derivatives and pair physics.

The cell-to-cell interaction is derived from the *mutual* interaction
energy of two cells A and B carrying mass m and raw second moments
M2 = sum(m_i d_i (x) d_i) about their centres of mass:

    U(R) = -[ mA mB g0(R) + 1/2 (mA M2B + mB M2A) : g2(R) ]

with R = xA - xB and g0..g3 the derivative tensors of 1/r.  Everything the
solver needs follows from U by differentiation, which is what makes the
conservation claims of Sec. 4.2/4.3 structural rather than accidental:

* the pair force F = -dU/dR is applied as +F to A and -F to B, so linear
  momentum is conserved by construction;
* U is rotationally invariant, so R x F + tau_A + tau_B = 0 *identically*
  (Noether) — the quadrupole torques tau are realized on the cells'
  internal structure through the Taylor Hessian during the downward pass,
  which is the mechanism behind Octo-Tiger's angular-momentum-conserving
  FMM (Marcello 2017);
* monopole-monopole forces are parallel to R, so the leaf-level P2P pass
  conserves angular momentum *bitwise* (R x cR = 0 exactly in IEEE
  arithmetic).

All kernels are vectorized over pair arrays (struct-of-arrays layout, as
the paper's Sec. 4.3 kernels are).
"""

from __future__ import annotations

import numpy as np

__all__ = ["greens", "p2p_pair", "p2p_pair_staged", "m2l_pair",
           "pair_torque", "LEVI_CIVITA"]

#: Levi-Civita tensor for torque contractions
LEVI_CIVITA = np.zeros((3, 3, 3))
for _i, _j, _k, _s in ((0, 1, 2, 1), (1, 2, 0, 1), (2, 0, 1, 1),
                       (0, 2, 1, -1), (2, 1, 0, -1), (1, 0, 2, -1)):
    LEVI_CIVITA[_i, _j, _k] = _s

_EYE = np.eye(3)


def greens(dR: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                    np.ndarray]:
    """Derivative tensors g0..g3 of 1/r at separations ``dR`` (n, 3).

    g0 = 1/r, g1_i = d_i(1/r), g2_ij = d_i d_j (1/r),
    g3_ijk = d_i d_j d_k (1/r).
    """
    dR = np.asarray(dR, dtype=np.float64)
    r2 = np.einsum("ni,ni->n", dR, dR)
    if np.any(r2 == 0.0):
        raise ValueError("coincident cells in interaction kernel")
    inv = 1.0 / np.sqrt(r2)
    inv2 = inv * inv
    inv3 = inv * inv2
    inv5 = inv3 * inv2
    inv7 = inv5 * inv2
    g0 = inv
    g1 = -dR * inv3[:, None]
    outer = np.einsum("ni,nj->nij", dR, dR)
    g2 = 3.0 * outer * inv5[:, None, None] - _EYE[None] * inv3[:, None, None]
    trip = np.einsum("ni,nj,nk->nijk", dR, dR, dR)
    sym = (np.einsum("ij,nk->nijk", _EYE, dR)
           + np.einsum("ik,nj->nijk", _EYE, dR)
           + np.einsum("jk,ni->nijk", _EYE, dR))
    g3 = -15.0 * trip * inv7[:, None, None, None] \
        + 3.0 * sym * inv5[:, None, None, None]
    return g0, g1, g2, g3


def p2p_pair(dR: np.ndarray, mA: np.ndarray, mB: np.ndarray
             ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Monopole-monopole (leaf P2P) interaction, 12-flop class (Sec. 4.3).

    Returns ``(phiA, phiB, accA, accB)``: potentials and accelerations.
    ``accB`` is derived from the same force vector as ``accA`` so the pair
    momentum change is exactly zero.
    """
    dR = np.asarray(dR, dtype=np.float64)
    r2 = np.einsum("ni,ni->n", dR, dR)
    inv = 1.0 / np.sqrt(r2)
    inv3 = inv / r2
    phiA = -mB * inv
    phiB = -mA * inv
    # force on A = -mA mB dR / r^3 ; accA = F/mA, accB = -F/mB
    f = -(mA * mB * inv3)[:, None] * dR
    accA = f / mA[:, None]
    accB = -f / mB[:, None]
    return phiA, phiB, accA, accB


def p2p_pair_staged(dR: np.ndarray, inv: np.ndarray, inv3: np.ndarray,
                    mA: np.ndarray, mB: np.ndarray
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                               np.ndarray]:
    """P2P with pre-staged Green-function factors (work aggregation).

    The aggregated replay path keeps per-batch staging buffers alive
    across launches (the slot-buffer reuse of the aggregation design):
    leaf centres of mass are pinned to the cell centres, so ``dR`` and
    the inverse-distance factors ``inv = 1/r`` / ``inv3 = 1/r^3`` of a
    recorded leaf-leaf batch are geometric constants and only the
    mass-dependent factors change between solves.

    Bit-identical to :func:`p2p_pair` given matching staged factors: the
    remaining expressions are the same operations in the same order.
    """
    phiA = -mB * inv
    phiB = -mA * inv
    f = -(mA * mB * inv3)[:, None] * dR
    accA = f / mA[:, None]
    accB = -f / mB[:, None]
    return phiA, phiB, accA, accB


def m2l_pair(dR: np.ndarray, mA: np.ndarray, mB: np.ndarray,
             M2A: np.ndarray, M2B: np.ndarray
             ) -> tuple[np.ndarray, ...]:
    """Multipole pair interaction, 455-flop class (Sec. 4.3).

    Parameters are pair SoA arrays: separations ``dR = xA - xB`` (n, 3),
    masses (n,), raw second moments (n, 3, 3).

    Returns ``(phiA, phiB, accA, accB, HA, HB)``:

    * ``phi``: potential at each cell's COM (monopole + quadrupole source),
    * ``acc``: the *pair force* divided by the receiving mass — includes
      both the source's quadrupole field and the receiver's own quadrupole
      coupling to the field gradient, so ``mA accA == -mB accB`` exactly,
    * ``H``: Hessian of the potential (for the L2L shift and the tidal
      realization of quadrupole torques on child cells).
    """
    g0, g1, g2, g3 = greens(dR)
    quad = mA[:, None, None] * M2B + mB[:, None, None] * M2A
    # mutual energy U = -(mA mB g0 + 0.5 quad : g2)
    # pair force on A: F = -dU/dR = mA mB g1 + 0.5 quad : g3
    force = (mA * mB)[:, None] * g1 \
        + 0.5 * np.einsum("njk,nijk->ni", quad, g3)
    accA = force / mA[:, None]
    accB = -force / mB[:, None]
    phiA = -(mB * g0 + 0.5 * np.einsum("njk,njk->n", M2B, g2))
    phiB = -(mA * g0 + 0.5 * np.einsum("njk,njk->n", M2A, g2))
    HA = -mB[:, None, None] * g2
    HB = -mA[:, None, None] * g2
    return phiA, phiB, accA, accB, HA, HB


def pair_torque(dR: np.ndarray, mA: np.ndarray, mB: np.ndarray,
                M2A: np.ndarray, M2B: np.ndarray
                ) -> tuple[np.ndarray, np.ndarray]:
    """Analytic spin torques (tau_A, tau_B) of one multipole pair.

    tau_A_l = mB eps_{jlm} M2A_{mk} g2_{jk}; used by the conservation
    tests to verify the Noether identity R x F + tau_A + tau_B = 0.
    """
    _g0, _g1, g2, _g3 = greens(dR)
    tauA = mB[:, None] * np.einsum("jlm,nmk,njk->nl", LEVI_CIVITA, M2A, g2)
    tauB = mA[:, None] * np.einsum("jlm,nmk,njk->nl", LEVI_CIVITA, M2B, g2)
    return tauA, tauB
