"""FMM interaction kernels: Green-function derivatives and pair physics.

The cell-to-cell interaction is derived from the *mutual* interaction
energy of two cells A and B carrying mass m and raw second moments
M2 = sum(m_i d_i (x) d_i) about their centres of mass:

    U(R) = -[ mA mB g0(R) + 1/2 (mA M2B + mB M2A) : g2(R) ]

with R = xA - xB and g0..g3 the derivative tensors of 1/r.  Everything the
solver needs follows from U by differentiation, which is what makes the
conservation claims of Sec. 4.2/4.3 structural rather than accidental:

* the pair force F = -dU/dR is applied as +F to A and -F to B, so linear
  momentum is conserved by construction;
* U is rotationally invariant, so R x F + tau_A + tau_B = 0 *identically*
  (Noether) — the quadrupole torques tau are realized on the cells'
  internal structure through the Taylor Hessian during the downward pass,
  which is the mechanism behind Octo-Tiger's angular-momentum-conserving
  FMM (Marcello 2017);
* monopole-monopole forces are parallel to R, so the leaf-level P2P pass
  conserves angular momentum *bitwise* (R x cR = 0 exactly in IEEE
  arithmetic).

All kernels are vectorized over pair arrays (struct-of-arrays layout, as
the paper's Sec. 4.3 kernels are).

Fused component form (the Sec. 4.3 kernel rework): ``g2`` has 6 and
``g3`` 10 unique components, but the original einsum formulation
materialized the full (n, 3, 3) and (n, 3, 3, 3) tensors — 27 doubles
per pair for ``g3`` alone — plus einsum contraction temporaries.  The
production kernels (:func:`m2l_pair`, :func:`p2p_pair`,
:func:`pair_torque`) now expand the contractions into explicit
arithmetic over only the unique components, and every pair kernel takes
``out=`` so the solver's tiled replay writes results straight into
preallocated batch outputs.  :func:`m2l_pair_reference` keeps the tensor
formulation as the property-test oracle and microbenchmark baseline.

Hot-path kernels do **not** guard against coincident points: the solver
validates pair separations geometrically once, at plan-record time
(:meth:`repro.core.gravity.fmm.FmmSolver` — distinct cells always have
distinct geometric centres), instead of scanning ``r2 == 0`` on every
call.  The test-facing :func:`greens` keeps its guard.
"""

from __future__ import annotations

import numpy as np

__all__ = ["greens", "p2p_pair", "p2p_pair_staged", "m2l_pair",
           "m2l_pair_reference", "pair_torque", "LEVI_CIVITA"]

#: Levi-Civita tensor for torque contractions
LEVI_CIVITA = np.zeros((3, 3, 3))
for _i, _j, _k, _s in ((0, 1, 2, 1), (1, 2, 0, 1), (2, 0, 1, 1),
                       (0, 2, 1, -1), (2, 1, 0, -1), (1, 0, 2, -1)):
    LEVI_CIVITA[_i, _j, _k] = _s

_EYE = np.eye(3)


def _inv_powers(x, y, z):
    """(inv, inv2, inv3, inv5, inv7) = odd inverse powers of r."""
    r2 = x * x + y * y + z * z
    inv = 1.0 / np.sqrt(r2)
    inv2 = inv * inv
    inv3 = inv * inv2
    inv5 = inv3 * inv2
    inv7 = inv5 * inv2
    return inv, inv2, inv3, inv5, inv7


def _g2_components(x, y, z, inv3, inv5):
    """The 6 unique components of g2_ij = 3 x_i x_j / r^5 - delta_ij / r^3
    (xx, yy, zz, xy, xz, yz)."""
    return (3.0 * (x * x) * inv5 - inv3,
            3.0 * (y * y) * inv5 - inv3,
            3.0 * (z * z) * inv5 - inv3,
            3.0 * (x * y) * inv5,
            3.0 * (x * z) * inv5,
            3.0 * (y * z) * inv5)


def greens(dR: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                    np.ndarray]:
    """Derivative tensors g0..g3 of 1/r at separations ``dR`` (n, 3).

    g0 = 1/r, g1_i = d_i(1/r), g2_ij = d_i d_j (1/r),
    g3_ijk = d_i d_j d_k (1/r).

    Built from the 6 unique g2 / 10 unique g3 components (no full outer
    products); the assembled tensors are exactly symmetric because the
    unique components are written to every symmetric slot.
    """
    dR = np.asarray(dR, dtype=np.float64)
    x, y, z = dR[:, 0], dR[:, 1], dR[:, 2]
    r2 = x * x + y * y + z * z
    if np.any(r2 == 0.0):
        raise ValueError("coincident cells in interaction kernel")
    inv = 1.0 / np.sqrt(r2)
    inv2 = inv * inv
    inv3 = inv * inv2
    inv5 = inv3 * inv2
    inv7 = inv5 * inv2
    g0 = inv
    g1 = -dR * inv3[:, None]
    n = len(dR)
    g2 = np.empty((n, 3, 3))
    xx, yy, zz, xy, xz, yz = _g2_components(x, y, z, inv3, inv5)
    g2[:, 0, 0] = xx
    g2[:, 1, 1] = yy
    g2[:, 2, 2] = zz
    g2[:, 0, 1] = g2[:, 1, 0] = xy
    g2[:, 0, 2] = g2[:, 2, 0] = xz
    g2[:, 1, 2] = g2[:, 2, 1] = yz
    # g3_ijk = -15 x_i x_j x_k / r^7 + 3 (d_ij x_k + d_ik x_j + d_jk x_i)/r^5
    p3 = 3.0 * inv5
    p9 = 9.0 * inv5
    p15 = 15.0 * inv7
    g3 = np.empty((n, 3, 3, 3))
    comps = _g3_components(x, y, z, p3, p9, p15)
    for (i, j, k), val in comps:
        g3[:, i, j, k] = g3[:, i, k, j] = g3[:, j, i, k] = val
        g3[:, j, k, i] = g3[:, k, i, j] = g3[:, k, j, i] = val
    return g0, g1, g2, g3


def _g3_components(x, y, z, p3, p9, p15):
    """The 10 unique components of g3, tagged with one index triple each."""
    return (((0, 0, 0), p9 * x - p15 * (x * x) * x),
            ((0, 0, 1), p3 * y - p15 * (x * x) * y),
            ((0, 0, 2), p3 * z - p15 * (x * x) * z),
            ((0, 1, 1), p3 * x - p15 * x * (y * y)),
            ((0, 1, 2), -p15 * (x * y) * z),
            ((0, 2, 2), p3 * x - p15 * x * (z * z)),
            ((1, 1, 1), p9 * y - p15 * (y * y) * y),
            ((1, 1, 2), p3 * z - p15 * (y * y) * z),
            ((1, 2, 2), p3 * y - p15 * y * (z * z)),
            ((2, 2, 2), p9 * z - p15 * (z * z) * z))


def p2p_pair(dR: np.ndarray, mA: np.ndarray, mB: np.ndarray, out=None
             ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Monopole-monopole (leaf P2P) interaction, 12-flop class (Sec. 4.3).

    Returns ``(phiA, phiB, accA, accB)``: potentials and accelerations.
    ``accB`` is derived from the same force vector as ``accA`` so the pair
    momentum change is exactly zero.  ``out`` (same four arrays) lets the
    tiled replay write results in place.
    """
    dR = np.asarray(dR, dtype=np.float64)
    x, y, z = dR[:, 0], dR[:, 1], dR[:, 2]
    r2 = x * x + y * y + z * z
    inv = 1.0 / np.sqrt(r2)
    inv3 = inv / r2
    if out is None:
        n = len(dR)
        out = (np.empty(n), np.empty(n), np.empty((n, 3)),
               np.empty((n, 3)))
    phiA, phiB, accA, accB = out
    phiA[...] = -mB * inv
    phiB[...] = -mA * inv
    # force on A = -mA mB dR / r^3 ; accA = F/mA, accB = -F/mB
    f = -(mA * mB * inv3)[:, None] * dR
    np.divide(f, mA[:, None], out=accA)
    np.divide(f, mB[:, None], out=accB)
    np.negative(accB, out=accB)
    return phiA, phiB, accA, accB


def p2p_pair_staged(dR: np.ndarray, inv: np.ndarray, inv3: np.ndarray,
                    mA: np.ndarray, mB: np.ndarray, out=None
                    ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                               np.ndarray]:
    """P2P with pre-staged Green-function factors (work aggregation).

    The aggregated replay path keeps per-batch staging buffers alive
    across launches (the slot-buffer reuse of the aggregation design):
    leaf centres of mass are pinned to the cell centres, so ``dR`` and
    the inverse-distance factors ``inv = 1/r`` / ``inv3 = 1/r^3`` of a
    recorded leaf-leaf batch are geometric constants and only the
    mass-dependent factors change between solves.

    Bit-identical to :func:`p2p_pair` given matching staged factors: the
    remaining expressions are the same operations in the same order.
    """
    if out is None:
        n = len(dR)
        out = (np.empty(n), np.empty(n), np.empty((n, 3)),
               np.empty((n, 3)))
    phiA, phiB, accA, accB = out
    phiA[...] = -mB * inv
    phiB[...] = -mA * inv
    f = -(mA * mB * inv3)[:, None] * dR
    np.divide(f, mA[:, None], out=accA)
    np.divide(f, mB[:, None], out=accB)
    np.negative(accB, out=accB)
    return phiA, phiB, accA, accB


def m2l_pair(dR: np.ndarray, mA: np.ndarray, mB: np.ndarray,
             M2A: np.ndarray, M2B: np.ndarray, out=None
             ) -> tuple[np.ndarray, ...]:
    """Multipole pair interaction, 455-flop class (Sec. 4.3), fused.

    Parameters are pair SoA arrays: separations ``dR = xA - xB`` (n, 3),
    masses (n,), raw second moments (n, 3, 3).

    Returns ``(phiA, phiB, accA, accB, HA, HB)``:

    * ``phi``: potential at each cell's COM (monopole + quadrupole source),
    * ``acc``: the *pair force* divided by the receiving mass — includes
      both the source's quadrupole field and the receiver's own quadrupole
      coupling to the field gradient, so ``mA accA == -mB accB`` exactly,
    * ``H``: Hessian of the potential (for the L2L shift and the tidal
      realization of quadrupole torques on child cells).

    Every contraction is expanded over the 6 unique ``g2`` and 10 unique
    ``g3`` components; no (n, 3, 3[, 3]) Green tensors are materialized.
    Agrees with :func:`m2l_pair_reference` to the last few ulps (the
    einsum contraction sums in a different order; the property tests
    document the tolerance).
    """
    dR = np.asarray(dR, dtype=np.float64)
    x, y, z = dR[:, 0], dR[:, 1], dR[:, 2]
    inv, inv2, inv3, inv5, inv7 = _inv_powers(x, y, z)
    g2xx, g2yy, g2zz, g2xy, g2xz, g2yz = _g2_components(x, y, z, inv3, inv5)
    p3 = 3.0 * inv5
    p9 = 9.0 * inv5
    p15 = 15.0 * inv7
    g3xxx = p9 * x - p15 * (x * x) * x
    g3xxy = p3 * y - p15 * (x * x) * y
    g3xxz = p3 * z - p15 * (x * x) * z
    g3xyy = p3 * x - p15 * x * (y * y)
    g3xyz = -p15 * (x * y) * z
    g3xzz = p3 * x - p15 * x * (z * z)
    g3yyy = p9 * y - p15 * (y * y) * y
    g3yyz = p3 * z - p15 * (y * y) * z
    g3yzz = p3 * y - p15 * y * (z * z)
    g3zzz = p9 * z - p15 * (z * z) * z
    # symmetric quadrupole of the pair: quad = mA M2B + mB M2A (6 comps)
    qxx = mA * M2B[:, 0, 0] + mB * M2A[:, 0, 0]
    qyy = mA * M2B[:, 1, 1] + mB * M2A[:, 1, 1]
    qzz = mA * M2B[:, 2, 2] + mB * M2A[:, 2, 2]
    qxy = mA * M2B[:, 0, 1] + mB * M2A[:, 0, 1]
    qxz = mA * M2B[:, 0, 2] + mB * M2A[:, 0, 2]
    qyz = mA * M2B[:, 1, 2] + mB * M2A[:, 1, 2]
    if out is None:
        n = len(dR)
        out = (np.empty(n), np.empty(n), np.empty((n, 3)),
               np.empty((n, 3)), np.empty((n, 3, 3)), np.empty((n, 3, 3)))
    phiA, phiB, accA, accB, HA, HB = out
    # mutual energy U = -(mA mB g0 + 0.5 quad : g2)
    # pair force on A: F_i = mA mB g1_i + 0.5 quad_jk g3_ijk
    mm = mA * mB
    fx = -mm * x * inv3 + 0.5 * (
        qxx * g3xxx + qyy * g3xyy + qzz * g3xzz
        + 2.0 * (qxy * g3xxy + qxz * g3xxz + qyz * g3xyz))
    fy = -mm * y * inv3 + 0.5 * (
        qxx * g3xxy + qyy * g3yyy + qzz * g3yzz
        + 2.0 * (qxy * g3xyy + qxz * g3xyz + qyz * g3yyz))
    fz = -mm * z * inv3 + 0.5 * (
        qxx * g3xxz + qyy * g3yyz + qzz * g3zzz
        + 2.0 * (qxy * g3xyz + qxz * g3xzz + qyz * g3yzz))
    np.divide(fx, mA, out=accA[:, 0])
    np.divide(fy, mA, out=accA[:, 1])
    np.divide(fz, mA, out=accA[:, 2])
    np.divide(fx, mB, out=accB[:, 0])
    np.divide(fy, mB, out=accB[:, 1])
    np.divide(fz, mB, out=accB[:, 2])
    np.negative(accB, out=accB)
    # phi_target = -(m_source g0 + 0.5 M2_source : g2)
    phiA[...] = -(mB * inv + 0.5 * _sym_contract(M2B, g2xx, g2yy, g2zz,
                                                 g2xy, g2xz, g2yz))
    phiB[...] = -(mA * inv + 0.5 * _sym_contract(M2A, g2xx, g2yy, g2zz,
                                                 g2xy, g2xz, g2yz))
    _hessian(HA, -mB, g2xx, g2yy, g2zz, g2xy, g2xz, g2yz)
    _hessian(HB, -mA, g2xx, g2yy, g2zz, g2xy, g2xz, g2yz)
    return phiA, phiB, accA, accB, HA, HB


def _sym_contract(M2, g2xx, g2yy, g2zz, g2xy, g2xz, g2yz):
    """M2 : g2 for symmetric M2, over the 6 unique g2 components."""
    return (M2[:, 0, 0] * g2xx + M2[:, 1, 1] * g2yy + M2[:, 2, 2] * g2zz
            + 2.0 * (M2[:, 0, 1] * g2xy + M2[:, 0, 2] * g2xz
                     + M2[:, 1, 2] * g2yz))


def _hessian(H, scale, g2xx, g2yy, g2zz, g2xy, g2xz, g2yz):
    """H_ij = scale * g2_ij assembled from the unique components."""
    np.multiply(scale, g2xx, out=H[:, 0, 0])
    np.multiply(scale, g2yy, out=H[:, 1, 1])
    np.multiply(scale, g2zz, out=H[:, 2, 2])
    np.multiply(scale, g2xy, out=H[:, 0, 1])
    np.multiply(scale, g2xz, out=H[:, 0, 2])
    np.multiply(scale, g2yz, out=H[:, 1, 2])
    H[:, 1, 0] = H[:, 0, 1]
    H[:, 2, 0] = H[:, 0, 2]
    H[:, 2, 1] = H[:, 1, 2]


def m2l_pair_reference(dR: np.ndarray, mA: np.ndarray, mB: np.ndarray,
                       M2A: np.ndarray, M2B: np.ndarray
                       ) -> tuple[np.ndarray, ...]:
    """The M2L interaction via full Green tensors and einsum contractions.

    The original formulation, kept as the property-test oracle and the
    baseline side of the ``kernels_micro`` benchmark; see
    :func:`m2l_pair` for the production kernel.
    """
    g0, g1, g2, g3 = greens(dR)
    quad = mA[:, None, None] * M2B + mB[:, None, None] * M2A
    force = (mA * mB)[:, None] * g1 \
        + 0.5 * np.einsum("njk,nijk->ni", quad, g3)
    accA = force / mA[:, None]
    accB = -force / mB[:, None]
    phiA = -(mB * g0 + 0.5 * np.einsum("njk,njk->n", M2B, g2))
    phiB = -(mA * g0 + 0.5 * np.einsum("njk,njk->n", M2A, g2))
    HA = -mB[:, None, None] * g2
    HB = -mA[:, None, None] * g2
    return phiA, phiB, accA, accB, HA, HB


def pair_torque(dR: np.ndarray, mA: np.ndarray, mB: np.ndarray,
                M2A: np.ndarray, M2B: np.ndarray
                ) -> tuple[np.ndarray, np.ndarray]:
    """Analytic spin torques (tau_A, tau_B) of one multipole pair.

    tau_A_l = mB eps_{jlm} M2A_{mk} g2_{jk}; used by the conservation
    tests to verify the Noether identity R x F + tau_A + tau_B = 0.
    Expanded over the unique g2 components: with A_{jm} = M2_{mk} g2_{jk},
    tau = (A_21 - A_12, A_02 - A_20, A_10 - A_01).
    """
    dR = np.asarray(dR, dtype=np.float64)
    x, y, z = dR[:, 0], dR[:, 1], dR[:, 2]
    r2 = x * x + y * y + z * z
    if np.any(r2 == 0.0):
        raise ValueError("coincident cells in interaction kernel")
    inv = 1.0 / np.sqrt(r2)
    inv2 = inv * inv
    inv3 = inv * inv2
    inv5 = inv3 * inv2
    g2xx, g2yy, g2zz, g2xy, g2xz, g2yz = _g2_components(x, y, z, inv3, inv5)

    def tau(m_other, M2):
        a01 = M2[:, 1, 0] * g2xx + M2[:, 1, 1] * g2xy + M2[:, 1, 2] * g2xz
        a02 = M2[:, 2, 0] * g2xx + M2[:, 2, 1] * g2xy + M2[:, 2, 2] * g2xz
        a10 = M2[:, 0, 0] * g2xy + M2[:, 0, 1] * g2yy + M2[:, 0, 2] * g2yz
        a12 = M2[:, 2, 0] * g2xy + M2[:, 2, 1] * g2yy + M2[:, 2, 2] * g2yz
        a20 = M2[:, 0, 0] * g2xz + M2[:, 0, 1] * g2yz + M2[:, 0, 2] * g2zz
        a21 = M2[:, 1, 0] * g2xz + M2[:, 1, 1] * g2yz + M2[:, 1, 2] * g2zz
        t = np.empty((len(x), 3))
        t[:, 0] = m_other * (a21 - a12)
        t[:, 1] = m_other * (a02 - a20)
        t[:, 2] = m_other * (a10 - a01)
        return t

    return tau(mB, M2A), tau(mA, M2B)
