"""Cell-based FMM gravity: stencils, kernels, solver, direct reference."""

from .direct import direct_field, direct_potential, direct_summation
from .fmm import FmmLevel, FmmSolver, GravityResult
from .kernels import greens, m2l_pair, p2p_pair, pair_torque
from .multipole import aggregate_m2m, taylor_shift
from .stencil import (OPENING_R2, canonical_stencil, p2p_stencil,
                      parity_stencils, root_stencil, well_separated)

__all__ = ["direct_field", "direct_potential", "direct_summation",
           "FmmLevel", "FmmSolver", "GravityResult",
           "greens", "m2l_pair", "p2p_pair", "pair_torque",
           "aggregate_m2m", "taylor_shift",
           "OPENING_R2", "canonical_stencil", "p2p_stencil",
           "parity_stencils", "root_stencil", "well_separated"]
