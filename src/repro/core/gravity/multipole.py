"""Multipole moments of FMM cells and the M2M / L2L shift operators.

Cells carry mass, centre of mass, and the *raw second moment*
``M2 = sum(m_i d_i (x) d_i)`` about their COM.  Raw moments are equivalent
to traceless quadrupoles in every kernel contraction (the Green tensors
are traceless) and compose exactly under aggregation:

    M2_parent = sum_children [ M2_c + m_c (X_c - X_p)(x)(X_c - X_p) ]

which is the first FMM step of Sec. 4.3: "The multipole moments of every
other cell are then calculated using the multipole moments of its child
cells.  We can additionally compute the center of mass for each refined
cell."

Leaf cells are point masses (``M2 = 0``): each hydro cell's mass sits at
its centre, matching the paper's "locally homogeneous densities"
assumption that keeps the flops/cell rate low compared to PVFMM (Sec. 2).
"""

from __future__ import annotations

import numpy as np

__all__ = ["aggregate_m2m", "taylor_shift"]


def aggregate_m2m(child_m: np.ndarray, child_com: np.ndarray,
                  child_M2: np.ndarray, groups: np.ndarray,
                  n_parents: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """M2M: combine child cells into parents.

    Parameters
    ----------
    child_m, child_com, child_M2:
        SoA arrays over child cells ((n,), (n, 3), (n, 3, 3)).
    groups:
        Parent index of each child cell (n,).
    n_parents:
        Number of parent cells.

    Returns ``(m, com, M2)`` for the parents.  Parents with zero total
    mass get their geometric information from a plain average to stay
    finite.
    """
    m = np.bincount(groups, weights=child_m, minlength=n_parents)
    com = np.empty((n_parents, 3))
    for d in range(3):
        com[:, d] = np.bincount(groups, weights=child_m * child_com[:, d],
                                minlength=n_parents)
    counts = np.bincount(groups, minlength=n_parents).astype(np.float64)
    safe = np.maximum(m, 1e-300)
    com /= safe[:, None]
    # massless parents: average child position
    empty = m <= 0.0
    if empty.any():
        for d in range(3):
            mean = np.bincount(groups, weights=child_com[:, d],
                               minlength=n_parents) / np.maximum(counts, 1.0)
            com[empty, d] = mean[empty]
    d_vec = child_com - com[groups]
    # parallel-axis contribution per unique component (M2 is symmetric):
    # no (n, 3, 3) outer-product temporary, mirror the upper triangle
    M2 = np.empty((n_parents, 3, 3))
    for i in range(3):
        for j in range(i, 3):
            w = child_M2[:, i, j] + child_m * (d_vec[:, i] * d_vec[:, j])
            M2[:, i, j] = np.bincount(groups, weights=w,
                                      minlength=n_parents)
            if i != j:
                M2[:, j, i] = M2[:, i, j]
    return m, com, M2


def taylor_shift(phi: np.ndarray, acc: np.ndarray, hess: np.ndarray,
                 d: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """L2L: shift a local (phi, acc, Hessian) expansion by displacement d.

    phi(x + d) = phi - acc . d + 1/2 d^T H d
    acc(x + d) = acc - H d
    H  (x + d) = H            (second-order truncation)

    Children inherit the parent's expansion evaluated at their own COM —
    the third FMM step ("the respective Taylor series expansion of the
    parent node is passed to the child nodes and accumulated", Sec. 4.3).
    """
    d0, d1, d2 = d[:, 0], d[:, 1], d[:, 2]
    Hd = np.empty_like(acc)
    Hd[:, 0] = hess[:, 0, 0] * d0 + hess[:, 0, 1] * d1 + hess[:, 0, 2] * d2
    Hd[:, 1] = hess[:, 1, 0] * d0 + hess[:, 1, 1] * d1 + hess[:, 1, 2] * d2
    Hd[:, 2] = hess[:, 2, 0] * d0 + hess[:, 2, 1] * d1 + hess[:, 2, 2] * d2
    a_dot_d = acc[:, 0] * d0 + acc[:, 1] * d1 + acc[:, 2] * d2
    d_H_d = d0 * Hd[:, 0] + d1 * Hd[:, 1] + d2 * Hd[:, 2]
    phi_out = phi - a_dot_d + 0.5 * d_H_d
    acc_out = acc - Hd
    return phi_out, acc_out, hess.copy()
