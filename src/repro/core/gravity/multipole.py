"""Multipole moments of FMM cells and the M2M / L2L shift operators.

Cells carry mass, centre of mass, and the *raw second moment*
``M2 = sum(m_i d_i (x) d_i)`` about their COM.  Raw moments are equivalent
to traceless quadrupoles in every kernel contraction (the Green tensors
are traceless) and compose exactly under aggregation:

    M2_parent = sum_children [ M2_c + m_c (X_c - X_p)(x)(X_c - X_p) ]

which is the first FMM step of Sec. 4.3: "The multipole moments of every
other cell are then calculated using the multipole moments of its child
cells.  We can additionally compute the center of mass for each refined
cell."

Leaf cells are point masses (``M2 = 0``): each hydro cell's mass sits at
its centre, matching the paper's "locally homogeneous densities"
assumption that keeps the flops/cell rate low compared to PVFMM (Sec. 2).
"""

from __future__ import annotations

import numpy as np

__all__ = ["aggregate_m2m", "taylor_shift"]


def aggregate_m2m(child_m: np.ndarray, child_com: np.ndarray,
                  child_M2: np.ndarray, groups: np.ndarray,
                  n_parents: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """M2M: combine child cells into parents.

    Parameters
    ----------
    child_m, child_com, child_M2:
        SoA arrays over child cells ((n,), (n, 3), (n, 3, 3)).
    groups:
        Parent index of each child cell (n,).
    n_parents:
        Number of parent cells.

    Returns ``(m, com, M2)`` for the parents.  Parents with zero total
    mass get their geometric information from a plain average to stay
    finite.
    """
    m = np.bincount(groups, weights=child_m, minlength=n_parents)
    com = np.empty((n_parents, 3))
    for d in range(3):
        com[:, d] = np.bincount(groups, weights=child_m * child_com[:, d],
                                minlength=n_parents)
    counts = np.bincount(groups, minlength=n_parents).astype(np.float64)
    safe = np.maximum(m, 1e-300)
    com /= safe[:, None]
    # massless parents: average child position
    empty = m <= 0.0
    if empty.any():
        for d in range(3):
            mean = np.bincount(groups, weights=child_com[:, d],
                               minlength=n_parents) / np.maximum(counts, 1.0)
            com[empty, d] = mean[empty]
    d_vec = child_com - com[groups]
    M2 = np.zeros((n_parents, 3, 3))
    contrib = child_M2 + child_m[:, None, None] * np.einsum(
        "ni,nj->nij", d_vec, d_vec)
    for i in range(3):
        for j in range(3):
            M2[:, i, j] = np.bincount(groups, weights=contrib[:, i, j],
                                      minlength=n_parents)
    return m, com, M2


def taylor_shift(phi: np.ndarray, acc: np.ndarray, hess: np.ndarray,
                 d: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """L2L: shift a local (phi, acc, Hessian) expansion by displacement d.

    phi(x + d) = phi - acc . d + 1/2 d^T H d
    acc(x + d) = acc - H d
    H  (x + d) = H            (second-order truncation)

    Children inherit the parent's expansion evaluated at their own COM —
    the third FMM step ("the respective Taylor series expansion of the
    parent node is passed to the child nodes and accumulated", Sec. 4.3).
    """
    Hd = np.einsum("nij,nj->ni", hess, d)
    phi_out = phi - np.einsum("ni,ni->n", acc, d) \
        + 0.5 * np.einsum("ni,ni->n", d, Hd)
    acc_out = acc - Hd
    return phi_out, acc_out, hess.copy()
