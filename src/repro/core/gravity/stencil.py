"""FMM interaction stencils (Sec. 4.3).

Two related objects live here:

* :func:`canonical_stencil` — the fixed 1074-element same-level stencil
  the paper counts flops with: ``{w : ||w||_inf <= 5 and ||w||_2^2 > 16}``
  (verified by brute force to contain exactly 1074 offsets, matching
  "each cell interacts with 1074 of its close neighbors").

* the **exact partition** used by our solver: with the opening criterion
  ``well_separated(w) <=> ||w||_2^2 > OPENING_R2``, a cell pair is handled
  by the multipole (M2L) pass at the *coarsest* level at which it is well
  separated, and by direct summation (P2P) at leaf level otherwise.  The
  resulting same-level list depends on the cell's parity within its parent
  (:func:`parity_stencils`); the union over parities is close to, but not
  identical to, the canonical stencil — the canonical one is what the GPU
  kernels iterate, the parity lists are what makes the mathematical
  partition exact (every pair handled exactly once, the property the
  FMM-vs-direct tests rely on).
"""

from __future__ import annotations

import itertools
from functools import lru_cache

import numpy as np

__all__ = ["OPENING_R2", "well_separated", "canonical_stencil",
           "parity_stencils", "root_stencil", "p2p_stencil",
           "STENCIL_HALF_WIDTH"]

#: squared opening radius: pairs with ||w||^2 > 16 (distance > 4 cells) are
#: far enough for a quadrupole expansion at theta ~ 0.5
OPENING_R2 = 16
#: the canonical stencil spans offsets -5..5 (an 11^3 box)
STENCIL_HALF_WIDTH = 5


def well_separated(w: np.ndarray) -> np.ndarray:
    """Vectorized opening criterion on integer offset rows (n, 3)."""
    w = np.asarray(w)
    return (w * w).sum(axis=-1) > OPENING_R2


@lru_cache(maxsize=1)
def canonical_stencil() -> np.ndarray:
    """The paper's 1074-element same-level stencil, shape (1074, 3)."""
    r = STENCIL_HALF_WIDTH
    pts = np.array(list(itertools.product(range(-r, r + 1), repeat=3)),
                   dtype=np.int64)
    d2 = (pts * pts).sum(axis=1)
    out = pts[d2 > OPENING_R2]
    assert len(out) == 1074, f"canonical stencil has {len(out)} != 1074"
    return out


def _floor_div2(w: np.ndarray) -> np.ndarray:
    """Floor division by 2 (matches parent-coordinate arithmetic)."""
    return np.floor_divide(w, 2)


@lru_cache(maxsize=8)
def parity_stencils(max_w: int = 9) -> dict[tuple[int, int, int], np.ndarray]:
    """Same-level M2L offset lists keyed by the cell's parity in its parent.

    For a cell ``a`` with parity ``p = a & 1``, the list contains offsets
    ``w`` such that ``a`` and ``a + w`` are well separated at this level
    while their parents were *not* well separated — i.e. the pair is
    handled here and nowhere else.
    """
    rng = range(-max_w, max_w + 1)
    pts = np.array(list(itertools.product(rng, repeat=3)), dtype=np.int64)
    pts = pts[(pts != 0).any(axis=1)]
    far = well_separated(pts)
    out: dict[tuple[int, int, int], np.ndarray] = {}
    for p in itertools.product((0, 1), repeat=3):
        parent_off = _floor_div2(pts + np.asarray(p))
        parent_near = ~well_separated(parent_off)
        sel = pts[far & parent_near]
        out[p] = sel
    return out


@lru_cache(maxsize=1)
def root_stencil(n: int = 8) -> np.ndarray:
    """Coarsest-level M2L offsets: every well-separated pair in an n^3 box.

    The root sub-grid's cells have no parent pass, so all well-separated
    pairs are handled here (near pairs descend / go to P2P).
    """
    rng = range(-(n - 1), n)
    pts = np.array(list(itertools.product(rng, repeat=3)), dtype=np.int64)
    pts = pts[(pts != 0).any(axis=1)]
    return pts[well_separated(pts)]


@lru_cache(maxsize=1)
def p2p_stencil() -> np.ndarray:
    """Leaf-level direct-summation offsets: near, non-zero offsets."""
    r = 4  # ||w||^2 <= 16 implies |w_i| <= 4
    pts = np.array(list(itertools.product(range(-r, r + 1), repeat=3)),
                   dtype=np.int64)
    pts = pts[(pts != 0).any(axis=1)]
    return pts[~well_separated(pts)]
