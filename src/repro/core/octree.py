"""The adaptive octree of sub-grids (Sec. 4.2).

"Octo-Tiger's main datastructure is a rotating Cartesian grid with
adaptive mesh refinement (AMR).  It is based on an adaptive octree
structure.  Each node is an N^3 sub-grid (with N = 8 ...) containing the
evolved variables, and can be further refined into eight child nodes."

This module provides the tree structure itself: creation, density-based
refinement with 2:1 balance, conservative prolongation/restriction between
levels, Morton-ordered traversal (the paper's SFC distribution order), and
the bridge to the FMM solver (:meth:`Octree.fmm_levels`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator

import numpy as np

from ..util import morton_encode
from .grid import NF, NGHOST, SUBGRID_N, SubGrid

__all__ = ["OctreeNode", "Octree", "prolong", "restrict"]


def prolong(parent_interior: np.ndarray) -> np.ndarray:
    """Conservative piecewise-constant prolongation: each parent cell maps
    to 2^3 identical children (preserves all volume integrals exactly)."""
    out = np.repeat(np.repeat(np.repeat(parent_interior, 2, axis=1),
                              2, axis=2), 2, axis=3)
    return out


def restrict(child_interior: np.ndarray) -> np.ndarray:
    """Conservative restriction: the mean over each 2^3 child block."""
    f, nx, ny, nz = child_interior.shape
    v = child_interior.reshape(f, nx // 2, 2, ny // 2, 2, nz // 2, 2)
    return v.mean(axis=(2, 4, 6))


@dataclass
class OctreeNode:
    """One octree node: a sub-grid when leaf, structural when refined."""

    level: int
    ipos: tuple[int, int, int]
    refined: bool = False
    grid: SubGrid | None = None

    @property
    def key(self) -> tuple[int, tuple[int, int, int]]:
        return (self.level, self.ipos)

    def children_ipos(self) -> list[tuple[int, int, int]]:
        i, j, k = self.ipos
        return [(2 * i + a, 2 * j + b, 2 * k + c)
                for a in (0, 1) for b in (0, 1) for c in (0, 1)]


class Octree:
    """Adaptive octree of N^3 sub-grids over a cubic domain.

    The tree always contains the root; leaves carry :class:`SubGrid`
    state.  ``domain`` is the physical edge length, with the lower corner
    at ``origin``.
    """

    def __init__(self, domain: float = 1.0,
                 origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
                 subgrid_n: int = SUBGRID_N):
        self.domain = float(domain)
        self.origin = tuple(float(c) for c in origin)
        self.subgrid_n = subgrid_n
        self.nodes: dict[tuple[int, tuple[int, int, int]], OctreeNode] = {}
        root = OctreeNode(level=0, ipos=(0, 0, 0))
        root.grid = self._make_grid(0, (0, 0, 0))
        self.nodes[root.key] = root

    # -- geometry ----------------------------------------------------------

    def subgrid_edge(self, level: int) -> float:
        return self.domain / (1 << level)

    def cell_width(self, level: int) -> float:
        return self.subgrid_edge(level) / self.subgrid_n

    def _make_grid(self, level: int, ipos: tuple[int, int, int]) -> SubGrid:
        edge = self.subgrid_edge(level)
        org = tuple(self.origin[d] + ipos[d] * edge for d in range(3))
        return SubGrid(origin=org, dx=self.cell_width(level),
                       n=self.subgrid_n, level=level, ipos=ipos)

    # -- queries ------------------------------------------------------------

    def get(self, level: int, ipos: tuple[int, int, int]) -> OctreeNode | None:
        return self.nodes.get((level, ipos))

    def leaves(self) -> Iterator[OctreeNode]:
        for node in self.nodes.values():
            if not node.refined:
                yield node

    def leaves_sfc(self) -> list[OctreeNode]:
        """Leaves in depth-first SFC order (the distribution order)."""
        max_level = max(n.level for n in self.nodes.values())

        def sort_key(node: OctreeNode):
            i, j, k = node.ipos
            key = int(morton_encode(np.array([i]), np.array([j]),
                                    np.array([k]))[0])
            return (key << (3 * (max_level - node.level)), node.level)

        return sorted(self.leaves(), key=sort_key)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_leaves(self) -> int:
        return sum(1 for _ in self.leaves())

    def max_level(self) -> int:
        return max(n.level for n in self.nodes.values())

    # -- refinement ----------------------------------------------------------------

    def refine(self, level: int, ipos: tuple[int, int, int]) -> list[OctreeNode]:
        """Split a leaf into 8 children, prolonging its state."""
        node = self.nodes.get((level, ipos))
        if node is None:
            raise KeyError(f"no node at level {level}, {ipos}")
        if node.refined:
            raise ValueError(f"node {node.key} is already refined")
        assert node.grid is not None
        fine = prolong(node.grid.interior)
        n = self.subgrid_n
        children = []
        for cip in node.children_ipos():
            child = OctreeNode(level=level + 1, ipos=cip)
            child.grid = self._make_grid(level + 1, cip)
            a = (cip[0] & 1) * n
            b = (cip[1] & 1) * n
            c = (cip[2] & 1) * n
            child.grid.interior[...] = fine[:, a:a + n, b:b + n, c:c + n]
            self.nodes[child.key] = child
            children.append(child)
        node.refined = True
        node.grid = None
        self._enforce_balance(node)
        return children

    def coarsen(self, level: int, ipos: tuple[int, int, int]) -> OctreeNode:
        """Merge 8 leaf children back into their parent (restriction)."""
        node = self.nodes.get((level, ipos))
        if node is None or not node.refined:
            raise ValueError(f"node ({level}, {ipos}) is not refined")
        n = self.subgrid_n
        merged = np.zeros((NF, 2 * n, 2 * n, 2 * n))
        for cip in node.children_ipos():
            child = self.nodes.get((level + 1, cip))
            if child is None or child.refined:
                raise ValueError("can only coarsen a node with leaf children")
            a = (cip[0] & 1) * n
            b = (cip[1] & 1) * n
            c = (cip[2] & 1) * n
            merged[:, a:a + n, b:b + n, c:c + n] = child.grid.interior
            del self.nodes[child.key]
        node.refined = False
        node.grid = self._make_grid(level, ipos)
        node.grid.interior[...] = restrict(merged)
        return node

    def _enforce_balance(self, node: OctreeNode) -> None:
        """2:1 balance: neighbours of a refined node may be at most one
        level coarser."""
        level, ipos = node.level, node.ipos
        for off in np.ndindex(3, 3, 3):
            d = np.array(off) - 1
            if not d.any():
                continue
            nb = tuple(np.array(ipos) + d)
            if any(c < 0 or c >= (1 << level) for c in nb):
                continue
            # walk up to find the containing leaf
            lvl, pos = level, nb
            while lvl > 0 and (lvl, tuple(pos)) not in self.nodes:
                pos = tuple(int(c) // 2 for c in pos)
                lvl -= 1
            neighbor = self.nodes.get((lvl, tuple(pos)))
            if neighbor is not None and not neighbor.refined \
                    and lvl < level - 0:
                if level - lvl >= 1:
                    self.refine(lvl, tuple(pos))

    def refine_by(self, criterion: Callable[[OctreeNode], bool],
                  max_level: int) -> int:
        """Refine every leaf for which ``criterion`` holds, repeatedly,
        until no leaf below ``max_level`` wants refinement.  Returns the
        number of refinements performed."""
        count = 0
        changed = True
        while changed:
            changed = False
            for node in list(self.leaves()):
                if node.level >= max_level or node.refined:
                    continue
                if criterion(node):
                    self.refine(node.level, node.ipos)
                    count += 1
                    changed = True
        return count

    # -- conservation diagnostics ----------------------------------------------------

    def total_mass(self) -> float:
        return sum(leaf.grid.total_mass() for leaf in self.leaves())

    def total_momentum(self) -> np.ndarray:
        return sum((leaf.grid.total_momentum() for leaf in self.leaves()),
                   np.zeros(3))

    # -- FMM bridge ---------------------------------------------------------------------

    def fmm_levels(self) -> tuple[list, dict[int, np.ndarray]]:
        """Cell-level specs + leaf densities for
        :meth:`repro.core.gravity.fmm.FmmSolver.from_levels`.

        Returns ``(specs, rho_by_level)`` where specs is a list of
        (level, width, coords, leaf_mask) and densities are flat arrays in
        each level's Morton order.
        """
        from .grid import RHO
        n = self.subgrid_n
        local = np.stack(np.meshgrid(np.arange(n), np.arange(n),
                                     np.arange(n), indexing="ij"),
                         -1).reshape(-1, 3)
        per_level: dict[int, list] = {}
        rho_parts: dict[int, list] = {}
        for node in self.nodes.values():
            base = np.array(node.ipos, dtype=np.int64) * n
            coords = base[None, :] + local
            per_level.setdefault(node.level, []).append(
                (coords, not node.refined, node))
        specs = []
        rho_by_level: dict[int, np.ndarray] = {}
        for lvl in sorted(per_level):
            coords = np.concatenate([c for c, _leaf, _n in per_level[lvl]])
            leaf = np.concatenate([
                np.full(len(c), is_leaf)
                for c, is_leaf, _n in per_level[lvl]])
            width = self.cell_width(lvl)
            specs.append((lvl, width, coords, leaf))
            # leaf densities must follow the level's Morton order
            keys = morton_encode(coords[:, 0], coords[:, 1], coords[:, 2])
            order = np.argsort(keys, kind="stable")
            rho_flat = np.concatenate([
                (node.grid.interior[RHO].reshape(-1)
                 if not node.refined else np.zeros(len(c)))
                for c, _leaf, node in per_level[lvl]])
            leaf_sorted = leaf[order]
            rho_by_level[lvl] = rho_flat[order][leaf_sorted]
        return specs, rho_by_level
